//! The detection stage of the pipeline: a registry of detector builders
//! and the running bank they assemble into.
//!
//! Where the seed had a closed two-variant enum, the pipeline now runs
//! any number of [`Detector`] implementations side by side over the
//! same shard-merge stream — the paper's premise ("can be integrated
//! with any anomaly detection system") taken to its operational
//! conclusion, the way SENATUS and Facebook's Fast Dimensional Analysis
//! feed one root-cause mining stage from a detector ensemble.
//!
//! - [`DetectorSpec`] — plain-data configuration for the built-in
//!   detectors (KL histograms, sliding entropy-PCA).
//! - [`DetectorRegistry`] — named builders, pre-populated from specs
//!   and open to [`register`](DetectorRegistry::register)ed custom
//!   detectors; lives in [`StreamConfig`](crate::pipeline::StreamConfig).
//! - [`DetectorBank`] — the live ensemble the control thread feeds:
//!   every closed window goes to every detector, alarms on the same
//!   window are merged into one [`EnsembleAlarm`] (one extraction per
//!   flagged window, however many detectors fired) with per-detector
//!   attribution and counters kept intact.
//! - [`DetectorPool`] — the same ensemble fanned across a small worker
//!   pool ([`DetectorBank::into_pool`]): windows broadcast to every
//!   worker, per-slot alarms reassembled in bank order, merged by the
//!   same control-side merge state — bit-identical output to the
//!   sequential bank, detector pushes off the control thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use anomex_detect::alarm::Alarm;
use anomex_detect::detector::Detector;
use anomex_detect::interval::IntervalStat;
use anomex_detect::kl::{KlConfig, KlOnline};
use anomex_detect::pca::{PcaConfig, PcaSliding};
use anomex_flow::store::TimeRange;
use anomex_obs::{Counter, StageTimer};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use crate::fault::{restart_backoff, ActiveFaults, FaultSite, Supervision, WorkerPoisoned};
use crate::window::ClosedWindow;

/// Configuration of one built-in detector slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorSpec {
    /// Histogram/KL detector — bit-identical with the batch
    /// `KlDetector` over the same windows.
    Kl(KlConfig),
    /// Entropy-PCA detector over a trailing window of the given length
    /// (incremental sliding-window PCA; approximates the batch
    /// detector).
    Pca(PcaConfig, usize),
}

impl DetectorSpec {
    /// The detection interval the windows must be cut to.
    pub fn interval_ms(&self) -> u64 {
        match self {
            DetectorSpec::Kl(c) => c.interval_ms,
            DetectorSpec::Pca(c, _) => c.interval_ms,
        }
    }

    /// The attribution name of the detector this spec builds.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorSpec::Kl(_) => "kl",
            DetectorSpec::Pca(..) => "entropy-pca",
        }
    }

    /// Build a fresh incremental state.
    pub fn build(&self) -> Box<dyn Detector> {
        match *self {
            DetectorSpec::Kl(c) => Box::new(KlOnline::new(c)),
            DetectorSpec::Pca(c, history) => Box::new(PcaSliding::new(c, history)),
        }
    }
}

type BuildFn = Arc<dyn Fn() -> Box<dyn Detector> + Send + Sync>;

#[derive(Clone)]
struct RegistryEntry {
    name: String,
    interval_ms: u64,
    build: BuildFn,
}

/// Named detector builders: what a pipeline's detection stage runs.
///
/// Built-in detectors enter via [`DetectorSpec`]s; anything implementing
/// [`Detector`] can be [`register`](DetectorRegistry::register)ed
/// alongside them. Every entry must agree on the detection interval —
/// [`launch`](crate::pipeline::launch) validates it, since the tumbling
/// window grid is shared by the whole bank.
#[derive(Clone, Default)]
pub struct DetectorRegistry {
    entries: Vec<RegistryEntry>,
}

impl DetectorRegistry {
    /// Empty registry (invalid to launch with — add at least one
    /// detector).
    pub fn new() -> DetectorRegistry {
        DetectorRegistry { entries: Vec::new() }
    }

    /// Registry running a single KL detector.
    pub fn kl(config: KlConfig) -> DetectorRegistry {
        DetectorRegistry::from_specs(&[DetectorSpec::Kl(config)])
    }

    /// Registry running a single sliding-PCA detector.
    pub fn pca(config: PcaConfig, history: usize) -> DetectorRegistry {
        DetectorRegistry::from_specs(&[DetectorSpec::Pca(config, history)])
    }

    /// Registry running every spec'd detector as an ensemble.
    pub fn from_specs(specs: &[DetectorSpec]) -> DetectorRegistry {
        let mut registry = DetectorRegistry::new();
        for spec in specs {
            registry.add_spec(*spec);
        }
        registry
    }

    /// Append one built-in detector.
    pub fn add_spec(&mut self, spec: DetectorSpec) -> &mut DetectorRegistry {
        let build: BuildFn = Arc::new(move || spec.build());
        self.entries.push(RegistryEntry {
            name: spec.name().to_string(),
            interval_ms: spec.interval_ms(),
            build,
        });
        self
    }

    /// Builder-style [`add_spec`](DetectorRegistry::add_spec).
    pub fn with_spec(mut self, spec: DetectorSpec) -> DetectorRegistry {
        self.add_spec(spec);
        self
    }

    /// Register a custom detector under `name`: `build` is called once
    /// per pipeline launch to create the incremental state. The name
    /// appears in alarm attribution and per-detector counters; it
    /// should match what the built states report from
    /// [`Detector::name`].
    ///
    /// # Panics
    /// Panics when `name` contains `'+'` — that is the merged-alarm
    /// attribution separator ("kl+entropy-pca"), and a name embedding
    /// it would be indistinguishable from a cross-detector merge.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        interval_ms: u64,
        build: impl Fn() -> Box<dyn Detector> + Send + Sync + 'static,
    ) -> &mut DetectorRegistry {
        let name = name.into();
        assert!(
            !name.contains('+'),
            "detector name '{name}' may not contain '+': it is the ensemble attribution separator"
        );
        self.entries.push(RegistryEntry { name, interval_ms, build: Arc::new(build) });
        self
    }

    /// Names of the registered detectors, in run order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no detector is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The common detection interval.
    ///
    /// # Panics
    /// Panics when the registry is empty or the entries disagree —
    /// the tumbling-window grid is shared, so a mixed-interval bank
    /// cannot be windowed.
    pub fn interval_ms(&self) -> u64 {
        let first = self.entries.first().expect("detector registry is empty").interval_ms;
        for e in &self.entries {
            assert_eq!(
                e.interval_ms, first,
                "detector '{}' wants a {} ms interval but the bank runs at {} ms",
                e.name, e.interval_ms, first
            );
        }
        first
    }

    /// Build the live bank the control thread feeds.
    pub fn build_bank(&self) -> DetectorBank {
        DetectorBank {
            slots: self
                .entries
                .iter()
                .map(|e| BankSlot {
                    name: e.name.clone(),
                    state: (e.build)(),
                    instruments: DetectorInstruments::standalone(),
                    build: e.build.clone(),
                })
                .collect(),
            merger: AlarmMerger::default(),
            supervision: Supervision::standalone(),
        }
    }
}

impl std::fmt::Debug for DetectorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorRegistry").field("detectors", &self.names()).finish()
    }
}

/// One merged alarm with its per-detector sources.
///
/// `alarm` is what drives extraction: when a single detector fired it
/// is that detector's alarm verbatim (id included — a single-detector
/// pipeline stays bit-identical with batch detection); when several
/// detectors flagged the same window it is a synthesized alarm whose
/// detector name joins the sources ("kl+entropy-pca"), whose hints are
/// the deduplicated union of the sources' hints, and whose id counts
/// merged alarms in this pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleAlarm {
    /// The merged alarm extraction runs on.
    pub alarm: Alarm,
    /// The contributing alarms, one per detector that fired, in bank
    /// order (detector-native ids).
    pub sources: Vec<Alarm>,
}

impl EnsembleAlarm {
    /// Wrap a single detector's alarm (attribution = itself).
    pub fn solo(alarm: Alarm) -> EnsembleAlarm {
        EnsembleAlarm { sources: vec![alarm.clone()], alarm }
    }
}

/// Per-detector counters of one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorCounters {
    /// Detector (registry) name.
    pub name: String,
    /// Windows this detector consumed.
    pub windows: u64,
    /// Alarms this detector raised (before cross-detector merging).
    pub alarms: u64,
}

/// Telemetry handles one bank member reports through. The counters are
/// the authoritative per-detector totals ([`DetectorBank::counters`] is
/// a view over them): standalone by default, swapped for registry-
/// backed handles when the pipeline instruments the bank — that swap is
/// what migrates `StreamStats.per_detector` onto the metrics registry
/// without changing any caller.
#[derive(Debug, Clone, Default)]
pub struct DetectorInstruments {
    /// Wall time of each `Detector::push` call (nanoseconds).
    pub push_timer: StageTimer,
    /// Windows this detector consumed.
    pub windows: Counter,
    /// Alarms this detector raised (before cross-detector merging).
    pub alarms: Counter,
}

impl DetectorInstruments {
    /// Live counters not attached to any registry, no push timing —
    /// the default for a bank built outside an instrumented pipeline.
    pub fn standalone() -> DetectorInstruments {
        DetectorInstruments {
            push_timer: StageTimer::noop(),
            windows: Counter::standalone(),
            alarms: Counter::standalone(),
        }
    }
}

struct BankSlot {
    name: String,
    state: Box<dyn Detector>,
    instruments: DetectorInstruments,
    /// The registry builder that made `state` — the supervisor's
    /// rebuild source when a push panics (the panicked state is
    /// mid-mutation and discarded).
    build: BuildFn,
}

/// Run one bank member over a window summary: count the window, time
/// the push, count the alarms. Shared verbatim by the sequential bank
/// and the pool workers so both paths meter identically.
fn run_slot(slot: &mut BankSlot, stat: &IntervalStat) -> Vec<Alarm> {
    slot.instruments.windows.inc();
    let state = &mut slot.state;
    let alarms = slot.instruments.push_timer.time(|| state.push(stat));
    slot.instruments.alarms.add(alarms.len() as u64);
    alarms
}

/// The deterministic cross-detector merge: the merged-alarm id counter
/// plus the group/sort/merge logic. Factored out of [`DetectorBank`]
/// so the sequential bank and the [`DetectorPool`] run one
/// implementation — the pool keeps this state on the control side,
/// which is what makes its output bit-identical to sequential however
/// the detector pushes are scheduled.
#[derive(Default)]
struct AlarmMerger {
    next_id: u64,
}

impl AlarmMerger {
    /// Group alarms (already concatenated in bank order) by window,
    /// sort the groups by window start, and merge each into one
    /// [`EnsembleAlarm`].
    fn merge_bank_order(&mut self, alarms: impl IntoIterator<Item = Alarm>) -> Vec<EnsembleAlarm> {
        let mut groups: Vec<(TimeRange, Vec<Alarm>)> = Vec::new();
        for alarm in alarms {
            match groups.iter_mut().find(|(w, _)| *w == alarm.window) {
                Some((_, sources)) => sources.push(alarm),
                None => groups.push((alarm.window, vec![alarm])),
            }
        }
        groups.sort_by_key(|(w, _)| w.from_ms);
        groups
            .into_iter()
            .map(|(window, sources)| {
                let merged = self.merge(window, &sources);
                EnsembleAlarm { alarm: merged, sources }
            })
            .collect()
    }

    /// One alarm out of the window's sources. A lone source passes
    /// through verbatim except for the id, which always counts merged
    /// alarms — for a single-detector bank the two numberings coincide,
    /// preserving the batch==stream bit-identity.
    fn merge(&mut self, window: TimeRange, sources: &[Alarm]) -> Alarm {
        let id = self.next_id;
        self.next_id += 1;
        if sources.len() == 1 {
            let mut alarm = sources[0].clone();
            alarm.id = id;
            return alarm;
        }
        let detector = sources.iter().map(|a| a.detector.as_str()).collect::<Vec<_>>().join("+");
        // Union of hints, first-seen order (earlier bank slots first).
        let mut hints = Vec::new();
        for source in sources {
            for hint in &source.hints {
                if !hints.contains(hint) {
                    hints.push(*hint);
                }
            }
        }
        // Scores live on detector-specific scales; carry the most
        // severe source's score/severity — and its kind guess, so the
        // label matches the severity it is reported with — rather than
        // inventing a unit.
        // total_cmp, not partial_cmp: a custom detector emitting a NaN
        // score must not panic the pipeline control thread.
        let worst = sources
            .iter()
            .max_by(|a, b| a.severity.cmp(&b.severity).then(a.score.total_cmp(&b.score)))
            .expect("merge called with sources");
        let mut merged = Alarm::new(id, detector, window).with_hints(hints);
        let kind =
            worst.kind_hint.clone().or_else(|| sources.iter().find_map(|s| s.kind_hint.clone()));
        if let Some(kind) = kind {
            merged = merged.with_kind(kind);
        }
        merged.score = worst.score;
        merged.severity = worst.severity;
        merged
    }
}

/// The running detector ensemble: every closed window is fed to every
/// detector; alarms on the same window are merged into one
/// [`EnsembleAlarm`] so downstream extraction runs once per flagged
/// window regardless of how many detectors agree.
///
/// Every slot push runs under `catch_unwind`: a panicking detector
/// loses its alarms for that one window and has its state rebuilt
/// fresh from the registry builder, while the other slots — and the
/// stream — keep going. When nothing panics the wrapper is invisible:
/// output stays bit-identical to the unsupervised bank.
pub struct DetectorBank {
    slots: Vec<BankSlot>,
    merger: AlarmMerger,
    supervision: Supervision,
}

impl DetectorBank {
    /// Number of detectors in the bank.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the bank holds no detector.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Per-detector counters so far, in bank order (a view over the
    /// slots' [`DetectorInstruments`] counters).
    pub fn counters(&self) -> Vec<DetectorCounters> {
        self.slots
            .iter()
            .map(|s| DetectorCounters {
                name: s.name.clone(),
                windows: s.instruments.windows.get(),
                alarms: s.instruments.alarms.get(),
            })
            .collect()
    }

    /// Swap each slot's telemetry handles, matched by detector name.
    /// Call before feeding the bank: previously counted totals stay
    /// behind in the replaced handles.
    pub fn instrument(&mut self, mut provide: impl FnMut(&str) -> DetectorInstruments) {
        for slot in &mut self.slots {
            slot.instruments = provide(&slot.name);
        }
    }

    /// Wire the bank to the pipeline's supervision bundle (fault plan +
    /// `fault.*` / `degraded.*` counters). Standalone handles otherwise.
    pub(crate) fn supervise(&mut self, supervision: Supervision) {
        self.supervision = supervision;
    }

    /// Feed one closed window's summary to every detector; returns the
    /// merged alarms (usually empty or one), in window order.
    ///
    /// A slot whose push panics contributes no alarms for this window;
    /// its state is rebuilt fresh from the registry builder and the
    /// remaining slots run normally — one bad detector cannot take the
    /// ensemble down.
    pub fn push(&mut self, stat: &IntervalStat) -> Vec<EnsembleAlarm> {
        // Concatenate every slot's alarms in bank order, then merge.
        let mut raised: Vec<Alarm> = Vec::new();
        for slot in &mut self.slots {
            match catch_unwind(AssertUnwindSafe(|| run_slot(slot, stat))) {
                Ok(alarms) => raised.extend(alarms),
                Err(_) => {
                    self.supervision.worker_panics.inc();
                    self.supervision.restarts.inc();
                    slot.state = (slot.build)();
                }
            }
        }
        self.merger.merge_bank_order(raised)
    }

    /// Feed one closed window; returns the merged alarms it raised.
    pub fn push_window(&mut self, window: &ClosedWindow) -> Vec<EnsembleAlarm> {
        self.push(&window.stat)
    }

    /// One alarm out of the window's sources; see [`AlarmMerger::merge`].
    #[cfg(test)]
    fn merge(&mut self, window: TimeRange, sources: &[Alarm]) -> Alarm {
        self.merger.merge(window, sources)
    }

    /// Fan this bank out across `workers` threads (clamped to the
    /// detector count). Each worker owns a contiguous run of bank
    /// slots; the merge state stays behind on the control side, so the
    /// pool's output is bit-identical to this bank's. Call
    /// [`instrument`](DetectorBank::instrument) *before* converting —
    /// the slots (and their telemetry handles) move into the workers,
    /// and the pool keeps only shared views.
    ///
    /// `queue_depth` bounds how many windows
    /// [`dispatch`](DetectorPool::dispatch) may run ahead of
    /// [`collect`](DetectorPool::collect) per worker.
    pub fn into_pool(self, workers: usize, queue_depth: usize) -> DetectorPool {
        self.into_pool_supervised(workers, queue_depth, Supervision::standalone())
    }

    /// [`into_pool`](DetectorBank::into_pool) wired to the pipeline's
    /// supervision bundle (armed faults + `fault.*` / `degraded.*`
    /// counters).
    pub(crate) fn into_pool_supervised(
        self,
        workers: usize,
        queue_depth: usize,
        supervision: Supervision,
    ) -> DetectorPool {
        let workers = workers.clamp(1, self.slots.len().max(1));
        let shadow: Vec<(String, DetectorInstruments)> =
            self.slots.iter().map(|s| (s.name.clone(), s.instruments.clone())).collect();
        let builders: Vec<BuildFn> = self.slots.iter().map(|s| s.build.clone()).collect();
        // Contiguous chunks, earlier workers one larger on remainder:
        // concatenating worker results in worker order restores bank
        // order exactly.
        let total = self.slots.len();
        let base = total / workers;
        let extra = total % workers;
        let queue_depth = queue_depth.max(1);
        let mut slots = self.slots.into_iter();
        let mut seats = Vec::with_capacity(workers);
        let mut start = 0usize;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            let chunk: Vec<BankSlot> = slots.by_ref().take(take).collect();
            let (task_tx, result_rx, join) =
                spawn_detect_seat(chunk, w, queue_depth, supervision.faults.clone());
            seats.push(Seat {
                task_tx,
                result_rx,
                join: Some(join),
                start,
                end: start + take,
                worker: w,
            });
            start += take;
        }
        DetectorPool {
            seats,
            shadow,
            builders,
            merger: self.merger,
            queue_depth_cfg: queue_depth,
            supervision,
            restarts: 0,
            pending: VecDeque::new(),
            ready: VecDeque::new(),
            inline: None,
        }
    }
}

/// A worker's answer per broadcast window: its slots' alarm lists in
/// slot order, or the poison sentinel it sends just before its thread
/// exits after a caught panic.
type DetectResult = Result<Vec<Vec<Alarm>>, WorkerPoisoned>;

/// One pool seat: the channels and thread handle of one worker, plus
/// the bank-order slot range it owns (stable across restarts, so
/// concatenating seat results in seat order always restores bank
/// order).
struct Seat {
    task_tx: Sender<Arc<IntervalStat>>,
    result_rx: Receiver<DetectResult>,
    join: Option<std::thread::JoinHandle<()>>,
    start: usize,
    end: usize,
    worker: usize,
}

fn spawn_detect_seat(
    chunk: Vec<BankSlot>,
    worker: usize,
    capacity: usize,
    faults: Arc<ActiveFaults>,
) -> (Sender<Arc<IntervalStat>>, Receiver<DetectResult>, std::thread::JoinHandle<()>) {
    let (task_tx, task_rx) = bounded::<Arc<IntervalStat>>(capacity.max(1));
    let (result_tx, result_rx) = unbounded::<DetectResult>();
    let join = std::thread::Builder::new()
        .name(format!("anomex-detect-{worker}"))
        // Thread spawn fails only on resource exhaustion at startup;
        // there is no pool to degrade into yet, so it is fatal.
        .spawn(move || pool_worker(chunk, worker, task_rx, result_tx, faults))
        .expect("spawn detector worker");
    (task_tx, result_rx, join)
}

/// One pool worker: runs its contiguous run of bank slots over every
/// broadcast window under `catch_unwind`, reporting the per-slot alarm
/// lists in slot order. A panicked window sends the poison sentinel
/// and ends the thread — the slot states are mid-mutation at that
/// point and must not be reused.
fn pool_worker(
    mut slots: Vec<BankSlot>,
    worker: usize,
    tasks: Receiver<Arc<IntervalStat>>,
    results: Sender<DetectResult>,
    faults: Arc<ActiveFaults>,
) {
    while let Ok(stat) = tasks.recv() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if faults.fire(FaultSite::DetectorPanic(worker)) {
                panic!("fault-inject: detector worker panic");
            }
            slots.iter_mut().map(|slot| run_slot(slot, &stat)).collect::<Vec<Vec<Alarm>>>()
        }));
        match outcome {
            Ok(per_slot) => {
                if results.send(Ok(per_slot)).is_err() {
                    return; // pool dropped mid-flight; nobody left to report to
                }
            }
            Err(_) => {
                // Result channel is unbounded and the supervisor holds
                // the receiver for the seat's whole life: the sentinel
                // always lands.
                let _ = results.send(Err(WorkerPoisoned));
                return;
            }
        }
    }
}

/// The parallel detector ensemble: a [`DetectorBank`]'s slots fanned
/// across a small worker pool ([`DetectorBank::into_pool`]).
///
/// Every closed window is broadcast to all workers as one shared
/// summary; each worker runs its detectors in slot order; the control
/// side reassembles the per-slot alarms in bank order and runs the
/// same deterministic merge the sequential bank runs — so the output
/// (merged ids included) is bit-identical to [`DetectorBank::push`]
/// over the same window sequence, whatever the worker scheduling.
///
/// Deadlock freedom: task channels are bounded (`queue_depth` windows
/// per worker) but result channels are unbounded, so a worker can
/// always finish a window it started — a full task queue only ever
/// blocks [`dispatch`](DetectorPool::dispatch), never a worker.
///
/// Fault tolerance: each worker runs its windows under
/// `catch_unwind`. When a seat dies (poison sentinel or disconnected
/// result channel), the supervisor rebuilds that seat's slots from the
/// registry build closures — fresh detector state, same `Arc`-shared
/// instruments — re-feeds every pending window, and the restarted seat
/// recomputes from the oldest one. After `MAX_POOL_RESTARTS` restarts
/// the pool fails over to an inline [`DetectorBank`] on the control
/// thread ([`is_degraded`](DetectorPool::is_degraded)); merged-id
/// continuity is preserved because the merger moves into the inline
/// bank.
pub struct DetectorPool {
    seats: Vec<Seat>,
    /// Control-side views of the worker-held instruments, in bank
    /// order; the handles are `Arc`-shared, so
    /// [`counters`](DetectorPool::counters) observes worker increments
    /// and survives seat rebuilds.
    shadow: Vec<(String, DetectorInstruments)>,
    /// Registry build closures in bank order — fresh detector state
    /// for seat restarts and failover.
    builders: Vec<BuildFn>,
    merger: AlarmMerger,
    queue_depth_cfg: usize,
    supervision: Supervision,
    restarts: u32,
    /// Windows dispatched and not yet collected, oldest first. The
    /// recovery path re-feeds this entire backlog to a restarted seat.
    pending: VecDeque<Arc<IntervalStat>>,
    /// Pre-computed answers produced while replaying the backlog
    /// during failover; [`collect`](DetectorPool::collect) serves these
    /// before touching seats.
    ready: VecDeque<Vec<EnsembleAlarm>>,
    /// `Some` after failover: all windows run inline here.
    inline: Option<DetectorBank>,
}

impl DetectorPool {
    /// Number of detectors across all workers.
    pub fn len(&self) -> usize {
        self.shadow.len()
    }

    /// True when the pool holds no detector.
    pub fn is_empty(&self) -> bool {
        self.shadow.is_empty()
    }

    /// Number of worker threads (the clamped `workers` argument);
    /// `0` once the pool has failed over to the inline path.
    pub fn workers(&self) -> usize {
        self.seats.len()
    }

    /// True once the pool has exhausted its restart budget and failed
    /// over to running the bank inline on the collecting thread.
    pub fn is_degraded(&self) -> bool {
        self.inline.is_some()
    }

    /// Per-detector counters so far, in bank order. Exact whenever
    /// every dispatched window has been collected. After a seat
    /// restart the recomputed window is counted again — the counters
    /// stay monotone but may over-count by the number of replayed
    /// windows.
    pub fn counters(&self) -> Vec<DetectorCounters> {
        self.shadow
            .iter()
            .map(|(name, instruments)| DetectorCounters {
                name: name.clone(),
                windows: instruments.windows.get(),
                alarms: instruments.alarms.get(),
            })
            .collect()
    }

    /// Broadcast one window summary to every worker without waiting
    /// for verdicts; pair with [`collect`](DetectorPool::collect).
    /// Dispatching a run of windows ahead of collecting is what lets
    /// detector pushes overlap the control thread's merge/extract
    /// work. Blocks when a worker is `queue_depth` windows behind.
    ///
    /// A dead seat's disconnected channel is ignored here; the death
    /// is detected and recovered in [`collect`](DetectorPool::collect),
    /// which re-feeds the backlog (this window included) to the
    /// restarted seat.
    pub fn dispatch(&mut self, stat: &IntervalStat) {
        if let Some(bank) = &mut self.inline {
            let merged = bank.push(stat);
            self.ready.push_back(merged);
            return;
        }
        let stat = Arc::new(stat.clone());
        self.pending.push_back(Arc::clone(&stat));
        for seat in &self.seats {
            let _ = seat.task_tx.send(Arc::clone(&stat));
        }
    }

    /// Collect the merged alarms of the *oldest* dispatched window
    /// (FIFO with [`dispatch`](DetectorPool::dispatch) order).
    ///
    /// When a seat died mid-window, restarts it (bounded by the
    /// supervision budget) and waits for the recomputed verdict; once
    /// the budget is spent, fails over to the inline bank and replays
    /// the backlog there — every dispatched window still gets an
    /// answer.
    ///
    /// # Panics
    /// Panics when nothing is in flight.
    pub fn collect(&mut self) -> Vec<EnsembleAlarm> {
        if let Some(front) = self.ready.pop_front() {
            return front;
        }
        assert!(!self.pending.is_empty(), "collect() without a dispatched window");
        // One answer per seat for the front window. A seat that died
        // after others answered only forces ITS result to be
        // recomputed — the survivors' answers are kept here so the
        // streams stay aligned.
        let mut per_seat: Vec<Option<Vec<Alarm>>> = (0..self.seats.len()).map(|_| None).collect();
        let mut i = 0;
        while i < self.seats.len() {
            if per_seat[i].is_some() {
                i += 1;
                continue;
            }
            match self.seats[i].result_rx.recv() {
                Ok(Ok(per_slot)) => {
                    per_seat[i] = Some(per_slot.into_iter().flatten().collect());
                    i += 1;
                }
                Ok(Err(WorkerPoisoned)) | Err(_) => {
                    self.supervision.worker_panics.inc();
                    if self.restarts < self.supervision.max_restarts {
                        self.restarts += 1;
                        self.supervision.restarts.inc();
                        restart_backoff(self.restarts);
                        self.restart_seat(i);
                        // Stay on seat i: the restarted seat recomputes
                        // the front window from the re-fed backlog.
                    } else {
                        self.fail_over();
                        return self
                            .ready
                            .pop_front()
                            .expect("failover replays every pending window");
                    }
                }
            }
        }
        self.pending.pop_front();
        let raised: Vec<Alarm> = per_seat.into_iter().flatten().flatten().collect();
        self.merger.merge_bank_order(raised)
    }

    /// Rebuild seat `i` in place: join the dead thread, rebuild its
    /// slot range with fresh detector state (shared instruments), and
    /// re-feed the whole pending backlog so the new worker recomputes
    /// from the front window.
    fn restart_seat(&mut self, i: usize) {
        let (start, end, worker) = (self.seats[i].start, self.seats[i].end, self.seats[i].worker);
        if let Some(join) = self.seats[i].join.take() {
            let _ = join.join(); // the panic was already caught and reported
        }
        let chunk: Vec<BankSlot> = (start..end)
            .map(|s| BankSlot {
                name: self.shadow[s].0.clone(),
                state: (self.builders[s])(),
                instruments: self.shadow[s].1.clone(),
                build: self.builders[s].clone(),
            })
            .collect();
        // Capacity covers the whole backlog so the re-feed below can
        // never block on a worker that has not started draining yet.
        let capacity = self.queue_depth_cfg.max(self.pending.len()).max(1);
        let (task_tx, result_rx, join) =
            spawn_detect_seat(chunk, worker, capacity, self.supervision.faults.clone());
        for stat in &self.pending {
            let _ = task_tx.send(Arc::clone(stat));
        }
        let seat = &mut self.seats[i];
        seat.task_tx = task_tx;
        seat.result_rx = result_rx;
        seat.join = Some(join);
    }

    /// Spend the last of the restart budget: tear the seats down,
    /// rebuild the full bank inline (fresh detector state, the same
    /// merger so merged ids stay continuous), and replay the backlog
    /// through it into [`ready`](DetectorPool::collect).
    fn fail_over(&mut self) {
        self.supervision.failovers.inc();
        for mut seat in std::mem::take(&mut self.seats) {
            drop(seat.task_tx);
            drop(seat.result_rx);
            if let Some(join) = seat.join.take() {
                let _ = join.join();
            }
        }
        let slots: Vec<BankSlot> = self
            .shadow
            .iter()
            .zip(&self.builders)
            .map(|((name, instruments), build)| BankSlot {
                name: name.clone(),
                state: build(),
                instruments: instruments.clone(),
                build: build.clone(),
            })
            .collect();
        let mut bank = DetectorBank {
            slots,
            merger: std::mem::take(&mut self.merger),
            supervision: self.supervision.clone(),
        };
        for stat in self.pending.drain(..) {
            self.ready.push_back(bank.push(&stat));
        }
        self.inline = Some(bank);
    }

    /// Dispatch + collect in one call — the drop-in equivalent of
    /// [`DetectorBank::push`].
    pub fn push(&mut self, stat: &IntervalStat) -> Vec<EnsembleAlarm> {
        self.dispatch(stat);
        self.collect()
    }

    /// Feed one closed window; returns the merged alarms it raised.
    pub fn push_window(&mut self, window: &ClosedWindow) -> Vec<EnsembleAlarm> {
        self.push(&window.stat)
    }

    /// Windows queued to workers and not yet picked up, summed across
    /// the pool — the `detect.pool.queue_depth` gauge source. `0` once
    /// failed over (the inline bank has no queue).
    pub fn queue_depth(&self) -> usize {
        self.seats.iter().map(|seat| seat.task_tx.len()).sum()
    }
}

impl Drop for DetectorPool {
    fn drop(&mut self) {
        // Disconnect the task channels so every worker's recv loop
        // ends, then join. Worker panics were caught and reported in
        // collect(); a join error here can only be the sentinel path,
        // so it is ignored.
        for mut seat in std::mem::take(&mut self.seats) {
            drop(seat.task_tx);
            if let Some(join) = seat.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::alarm::Severity;
    use anomex_flow::feature::FeatureItem;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    fn scan_stat(range: TimeRange, benign: u32, scan: u32) -> IntervalStat {
        let mut stat = IntervalStat::empty(range);
        for i in 0..benign {
            stat.add(
                &FlowRecord::builder()
                    .time(range.from_ms + i as u64, range.from_ms + i as u64 + 5)
                    .src(Ipv4Addr::from(0x0A00_0000 + (i % 30)), 1_024 + (i % 400) as u16)
                    .dst(Ipv4Addr::from(0xAC10_0000 + (i % 5)), 80)
                    .volume(2, 1_000)
                    .build(),
            );
        }
        for p in 1..=scan {
            stat.add(
                &FlowRecord::builder()
                    .time(range.from_ms + p as u64 % 1_000, range.from_ms + p as u64 % 1_000 + 1)
                    .src("10.66.66.66".parse().unwrap(), 55_548)
                    .dst("172.16.0.99".parse().unwrap(), p as u16)
                    .volume(1, 44)
                    .build(),
            );
        }
        stat
    }

    fn feed_stats(windows: u64, scan_in_last: bool) -> Vec<IntervalStat> {
        (0..windows)
            .map(|t| {
                let range = TimeRange::new(t * 1_000, (t + 1) * 1_000);
                let scan = if scan_in_last && t == windows - 1 { 1_200 } else { 0 };
                // Wobble the benign load so PCA's training variance is
                // non-degenerate.
                let benign = 150 + (t % 4) as u32 * 13;
                scan_stat(range, benign, scan)
            })
            .collect()
    }

    fn feed(bank: &mut DetectorBank, windows: u64, scan_in_last: bool) -> Vec<EnsembleAlarm> {
        feed_stats(windows, scan_in_last).iter().flat_map(|stat| bank.push(stat)).collect()
    }

    #[test]
    fn single_kl_bank_alarms_on_scan_window() {
        let config = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut bank = DetectorRegistry::kl(config).build_bank();
        let alarms = feed(&mut bank, 8, true);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].alarm.window.from_ms, 7_000);
        assert_eq!(alarms[0].alarm.detector, "kl");
        assert_eq!(alarms[0].sources.len(), 1);
        let counters = bank.counters();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].name, "kl");
        assert_eq!(counters[0].windows, 8);
        assert_eq!(counters[0].alarms, 1);
    }

    #[test]
    fn ensemble_merges_same_window_alarms_with_attribution() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let pca = PcaConfig { interval_ms: 1_000, ..PcaConfig::default() };
        let registry =
            DetectorRegistry::from_specs(&[DetectorSpec::Kl(kl), DetectorSpec::Pca(pca, 12)]);
        assert_eq!(registry.names(), vec!["kl", "entropy-pca"]);
        assert_eq!(registry.interval_ms(), 1_000);

        let mut bank = registry.build_bank();
        let alarms = feed(&mut bank, 12, true);
        assert_eq!(alarms.len(), 1, "one merged alarm per flagged window");
        let ensemble = &alarms[0];
        assert_eq!(ensemble.sources.len(), 2, "both detectors must flag the scan");
        assert_eq!(ensemble.alarm.detector, "kl+entropy-pca");
        assert_eq!(ensemble.alarm.id, 0, "merged ids count merged alarms");
        assert_eq!(ensemble.sources[0].detector, "kl");
        assert_eq!(ensemble.sources[1].detector, "entropy-pca");
        // The union meta-data carries the scanner from either source.
        assert!(
            ensemble
                .alarm
                .hints
                .iter()
                .any(|h| *h == FeatureItem::src_ip("10.66.66.66".parse().unwrap())),
            "union hints lost the scanner: {:?}",
            ensemble.alarm.hints
        );
        let counters = bank.counters();
        assert_eq!(counters[0].alarms, 1);
        assert_eq!(counters[1].alarms, 1);
        assert_eq!(counters[1].windows, 12);
    }

    #[test]
    fn custom_detector_registers_and_runs() {
        struct EveryWindow {
            next_id: u64,
        }
        impl Detector for EveryWindow {
            fn name(&self) -> &str {
                "every-window"
            }
            fn interval_ms(&self) -> u64 {
                1_000
            }
            fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
                let alarm = Alarm::new(self.next_id, self.name(), stat.range);
                self.next_id += 1;
                vec![alarm]
            }
        }
        let mut registry = DetectorRegistry::new();
        registry.register("every-window", 1_000, || Box::new(EveryWindow { next_id: 0 }));
        let mut bank = registry.build_bank();
        let merged = feed(&mut bank, 3, false);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[2].alarm.id, 2);
        assert_eq!(bank.counters()[0].alarms, 3);
    }

    #[test]
    fn merged_alarm_takes_most_severe_source() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut bank = DetectorRegistry::kl(kl).build_bank();
        // Craft a merge directly: two sources with conflicting kind
        // guesses, the second more severe — score, severity AND kind
        // must all come from the same (worst) source.
        let window = TimeRange::new(0, 1_000);
        let a = Alarm::new(0, "kl", window).with_score(2.0, 1.9).with_kind("port scan");
        let b = Alarm::new(0, "entropy-pca", window).with_score(50.0, 1.0).with_kind("flood");
        let merged = bank.merge(window, &[a, b]);
        assert_eq!(merged.severity, Severity::High);
        assert_eq!(merged.score, 50.0);
        assert_eq!(merged.detector, "kl+entropy-pca");
        assert_eq!(merged.kind_hint.as_deref(), Some("flood"), "kind follows the worst source");
    }

    #[test]
    fn merge_survives_nan_scores_from_custom_detectors() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut bank = DetectorRegistry::kl(kl).build_bank();
        let window = TimeRange::new(0, 1_000);
        let mut a = Alarm::new(0, "bad-custom", window);
        a.score = f64::NAN; // same (default Medium) severity as `b`
        let b = Alarm::new(0, "kl", window).with_score(3.0, 1.9);
        let merged = bank.merge(window, &[a, b]);
        assert_eq!(merged.detector, "bad-custom+kl", "NaN must not panic the merge");
    }

    /// A chatty custom detector so the pool tests cover the merge path
    /// (it alarms every window, forcing cross-detector merges whenever
    /// a built-in also fires) and a stateful id sequence workers must
    /// not perturb.
    struct Chatty {
        next_id: u64,
    }
    impl Detector for Chatty {
        fn name(&self) -> &str {
            "chatty"
        }
        fn interval_ms(&self) -> u64 {
            1_000
        }
        fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
            let alarm = Alarm::new(self.next_id, self.name(), stat.range);
            self.next_id += 1;
            vec![alarm]
        }
    }

    /// Every registered ensemble member — both built-ins plus a custom
    /// detector — through the worker pool, at several pool widths: the
    /// merged output (ids, attribution, hints, everything) and the
    /// per-detector counters must be bit-identical to the sequential
    /// bank.
    #[test]
    fn pool_output_is_bit_identical_to_sequential() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let pca = PcaConfig { interval_ms: 1_000, ..PcaConfig::default() };
        let mut registry =
            DetectorRegistry::from_specs(&[DetectorSpec::Kl(kl), DetectorSpec::Pca(pca, 12)]);
        registry.register("chatty", 1_000, || Box::new(Chatty { next_id: 0 }));

        let mut sequential = registry.build_bank();
        let expected = feed(&mut sequential, 12, true);
        assert!(expected.len() >= 12, "chatty must alarm every window");
        assert!(
            expected.iter().any(|e| e.sources.len() >= 2),
            "scan window must exercise a cross-detector merge"
        );

        let stats = feed_stats(12, true);
        for workers in [1usize, 2, 3, 8] {
            let mut pool = registry.build_bank().into_pool(workers, 4);
            assert_eq!(pool.workers(), workers.min(3), "pool clamps to the detector count");
            assert_eq!(pool.len(), 3);
            let merged: Vec<EnsembleAlarm> =
                stats.iter().flat_map(|stat| pool.push(stat)).collect();
            assert_eq!(merged, expected, "{workers} workers diverged from sequential");
            assert_eq!(pool.counters(), sequential.counters(), "{workers} workers");
        }
    }

    /// Dispatch-ahead (the pipelined mode the control loop uses on a
    /// batch of ready windows) must keep FIFO window order: collect()
    /// returns windows in dispatch order with the same id sequence as
    /// back-to-back push() calls.
    #[test]
    fn pool_dispatch_ahead_preserves_window_order() {
        let mut registry = DetectorRegistry::new();
        registry.register("chatty", 1_000, || Box::new(Chatty { next_id: 0 }));
        let stats = feed_stats(6, false);

        let mut reference = registry.build_bank();
        let expected: Vec<EnsembleAlarm> =
            stats.iter().flat_map(|stat| reference.push(stat)).collect();

        let mut pool = registry.build_bank().into_pool(2, stats.len());
        for stat in &stats {
            pool.dispatch(stat);
        }
        let mut merged = Vec::new();
        for _ in &stats {
            merged.extend(pool.collect());
        }
        assert_eq!(merged, expected);
        assert_eq!(merged.len(), 6);
        for (i, ensemble) in merged.iter().enumerate() {
            assert_eq!(ensemble.alarm.id, i as u64, "ids must count windows in dispatch order");
            assert_eq!(ensemble.alarm.window.from_ms, i as u64 * 1_000);
        }
        assert_eq!(pool.queue_depth(), 0, "everything collected");
    }

    #[test]
    #[should_panic(expected = "may not contain '+'")]
    fn registering_a_plus_name_is_rejected() {
        struct Never;
        impl Detector for Never {
            fn name(&self) -> &str {
                "ips+ids"
            }
            fn interval_ms(&self) -> u64 {
                1_000
            }
            fn push(&mut self, _stat: &IntervalStat) -> Vec<Alarm> {
                Vec::new()
            }
        }
        DetectorRegistry::new().register("ips+ids", 1_000, || Box::new(Never));
    }

    #[test]
    #[should_panic(expected = "wants a 2000 ms interval")]
    fn mixed_intervals_panic() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let pca = PcaConfig { interval_ms: 2_000, ..PcaConfig::default() };
        DetectorRegistry::from_specs(&[DetectorSpec::Kl(kl), DetectorSpec::Pca(pca, 8)])
            .interval_ms();
    }

    /// A detector that panics exactly once, on the Nth push counted
    /// across rebuilds (the registry build closure shares the counter,
    /// so a freshly rebuilt slot continues the global sequence instead
    /// of re-panicking).
    struct Flaky {
        pushes: Arc<std::sync::atomic::AtomicU64>,
        panic_at: u64,
    }
    impl Detector for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn interval_ms(&self) -> u64 {
            1_000
        }
        fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
            let n = self.pushes.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            assert!(n != self.panic_at, "flaky detector panics on push {n}");
            vec![Alarm::new(n, self.name(), stat.range)]
        }
    }

    /// A detector panicking inside the *sequential* bank must not take
    /// the pipeline down: the slot is caught, counted, and rebuilt
    /// fresh, and the other slots' alarms for that window survive.
    /// This path needs no fault-injection feature — it is how the bank
    /// absorbs a genuinely buggy custom detector.
    #[test]
    fn inline_bank_survives_a_panicking_detector() {
        let pushes = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut registry = DetectorRegistry::new();
        let shared = Arc::clone(&pushes);
        registry.register("flaky", 1_000, move || {
            Box::new(Flaky { pushes: Arc::clone(&shared), panic_at: 3 })
        });
        registry.register("chatty", 1_000, || Box::new(Chatty { next_id: 0 }));

        let mut bank = registry.build_bank();
        let sup = Supervision::standalone();
        bank.supervise(sup.clone());
        let merged = feed(&mut bank, 5, false);

        assert_eq!(sup.worker_panics.get(), 1, "exactly one slot panic caught");
        assert_eq!(sup.restarts.get(), 1, "the slot was rebuilt");
        // Chatty answers all 5 windows; flaky loses only window 3's
        // alarms (its panic window), so 4 merges carry both and 1
        // carries chatty alone.
        assert_eq!(merged.len(), 5, "every window still gets its merged alarms");
        let with_flaky =
            merged.iter().filter(|e| e.sources.iter().any(|s| s.detector == "flaky")).count();
        assert_eq!(with_flaky, 4, "only the panicking window loses the flaky slot's alarms");
        assert_eq!(
            pushes.load(std::sync::atomic::Ordering::Relaxed),
            5,
            "rebuilt slot kept running"
        );
    }
}

#[cfg(all(test, feature = "fault-inject"))]
mod injected {
    use super::*;
    use crate::fault::{ActiveFaults, FaultPlan, MAX_POOL_RESTARTS};
    use anomex_detect::kl::KlConfig;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use anomex_obs::Counter;

    fn armed(plan: &FaultPlan) -> Supervision {
        Supervision {
            faults: ActiveFaults::new(plan, Counter::standalone()),
            worker_panics: Counter::standalone(),
            restarts: Counter::standalone(),
            failovers: Counter::standalone(),
            quarantined: Counter::standalone(),
            max_restarts: MAX_POOL_RESTARTS,
        }
    }

    fn stats(windows: u64) -> Vec<IntervalStat> {
        (0..windows)
            .map(|t| {
                let range = TimeRange::new(t * 1_000, (t + 1) * 1_000);
                let mut stat = IntervalStat::empty(range);
                for i in 0..(120 + (t % 3) as u32 * 7) {
                    stat.add(
                        &FlowRecord::builder()
                            .time(range.from_ms + i as u64, range.from_ms + i as u64 + 5)
                            .src(
                                std::net::Ipv4Addr::from(0x0A00_0000 + (i % 30)),
                                1_024 + (i % 400) as u16,
                            )
                            .dst(std::net::Ipv4Addr::from(0xAC10_0000 + (i % 5)), 80)
                            .volume(2, 1_000)
                            .build(),
                    );
                }
                stat
            })
            .collect()
    }

    fn pool_with(plan: &FaultPlan, workers: usize) -> (DetectorPool, Supervision) {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let registry = DetectorRegistry::from_specs(&[
            DetectorSpec::Kl(kl),
            DetectorSpec::Pca(
                anomex_detect::pca::PcaConfig { interval_ms: 1_000, ..Default::default() },
                12,
            ),
        ]);
        let sup = armed(plan);
        let pool = registry.build_bank().into_pool_supervised(workers, 4, sup.clone());
        (pool, sup)
    }

    /// One injected seat panic: the seat restarts, recomputes the
    /// window, and the pool answers every window without degrading.
    #[test]
    fn seat_panic_restarts_and_answers_every_window() {
        let plan = FaultPlan::new().once(FaultSite::DetectorPanic(0), 2);
        let (mut pool, sup) = pool_with(&plan, 2);
        assert_eq!(pool.workers(), 2);
        let merged: Vec<Vec<EnsembleAlarm>> = stats(6).iter().map(|stat| pool.push(stat)).collect();
        assert_eq!(merged.len(), 6, "every dispatched window collected");
        assert_eq!(sup.worker_panics.get(), 1);
        assert_eq!(sup.restarts.get(), 1);
        assert_eq!(sup.failovers.get(), 0);
        assert!(!pool.is_degraded());
        assert_eq!(pool.workers(), 2, "the seat came back");
    }

    /// A seat that panics on every window burns the restart budget,
    /// then the pool fails over to the inline bank — still answering
    /// every window, with the degradation visible in the counters.
    #[test]
    fn exhausted_seat_budget_fails_over_to_inline_bank() {
        let plan = FaultPlan::new().repeat_from(FaultSite::DetectorPanic(0), 1);
        let (mut pool, sup) = pool_with(&plan, 2);
        let merged: Vec<Vec<EnsembleAlarm>> = stats(6).iter().map(|stat| pool.push(stat)).collect();
        assert_eq!(merged.len(), 6, "failover replays the backlog; no window is lost");
        assert!(pool.is_degraded());
        assert_eq!(pool.workers(), 0, "all seats torn down");
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(sup.failovers.get(), 1);
        assert_eq!(sup.restarts.get(), MAX_POOL_RESTARTS as u64);
        assert_eq!(sup.worker_panics.get(), (MAX_POOL_RESTARTS + 1) as u64);
        // Dispatch keeps working inline after failover.
        let more = pool.push(&stats(7)[6]);
        let _ = more;
    }
}

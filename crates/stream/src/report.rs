//! Continuous extraction: alarms raised on a closed window are mined
//! against the in-memory window shards immediately — inline on the
//! control thread, or on a supervised worker behind an
//! [`ExtractionPool`] — and the resulting [`StreamReport`]s flow to a
//! subscriber channel.
//!
//! Everything on the subscriber channel is a [`StreamReport`]: either
//! an [`AlarmReport`] (a merged alarm's mined root cause, the normal
//! case) or a [`FaultNotice`] (the pipeline degraded — a window was
//! quarantined after repeated extraction panics, or a shard worker
//! died). Faults are in-band on purpose: a subscriber that only ever
//! sees alarms cannot distinguish "quiet network" from "dead pipeline".

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use anomex_core::candidate::{candidate_filter, candidates_from_iter};
use anomex_core::encode::{EncodeState, EncodedFlows};
use anomex_core::extract::{Extraction, Extractor, ExtractorConfig};
use anomex_detect::alarm::Alarm;
use anomex_flow::store::TimeRange;
use anomex_obs::{Counter, Histogram, StageTimer};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use serde::{Deserialize, Serialize};

use crate::detector::EnsembleAlarm;
use crate::fault::{
    restart_backoff, ActiveFaults, FaultSite, Supervision, WorkerPoisoned, MAX_TASK_ATTEMPTS,
};
use crate::window::ClosedWindow;

/// One item on the subscriber channel: a mined root-cause report, or an
/// in-band notice that the pipeline degraded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamReport {
    /// A merged alarm's root-cause report (the normal case).
    Alarm(AlarmReport),
    /// The pipeline degraded: a quarantined window, or a terminal shard
    /// fault. See [`FaultNotice::terminal`].
    Fault(FaultNotice),
}

impl StreamReport {
    /// The alarm report, when this is one.
    pub fn as_alarm(&self) -> Option<&AlarmReport> {
        match self {
            StreamReport::Alarm(report) => Some(report),
            StreamReport::Fault(_) => None,
        }
    }

    /// The fault notice, when this is one.
    pub fn as_fault(&self) -> Option<&FaultNotice> {
        match self {
            StreamReport::Alarm(_) => None,
            StreamReport::Fault(notice) => Some(notice),
        }
    }

    /// The (merged) alarm that triggered extraction, for alarm reports.
    pub fn alarm(&self) -> Option<&Alarm> {
        self.as_alarm().map(|r| &r.alarm)
    }

    /// The mined itemsets, for alarm reports.
    pub fn extraction(&self) -> Option<&Extraction> {
        self.as_alarm().map(|r| &r.extraction)
    }

    /// Per-detector attribution, for alarm reports (empty for faults).
    pub fn sources(&self) -> &[Alarm] {
        self.as_alarm().map_or(&[], |r| &r.sources)
    }

    /// True for a [`FaultNotice`].
    pub fn is_fault(&self) -> bool {
        matches!(self, StreamReport::Fault(_))
    }

    /// Reports dropped on the bounded subscriber channel before this
    /// one was emitted — a slow subscriber sees the gap size, not
    /// silence. Carried by both variants.
    pub fn dropped_before(&self) -> u64 {
        match self {
            StreamReport::Alarm(report) => report.dropped_before,
            StreamReport::Fault(notice) => notice.dropped_before,
        }
    }

    /// Stamp the drop gap at emission time (both variants carry it).
    pub(crate) fn set_dropped_before(&mut self, dropped: u64) {
        match self {
            StreamReport::Alarm(report) => report.dropped_before = dropped,
            StreamReport::Fault(notice) => notice.dropped_before = dropped,
        }
    }
}

/// One merged alarm's root-cause report, as emitted on the subscriber
/// channel inside [`StreamReport::Alarm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmReport {
    /// The (merged) alarm that triggered extraction.
    pub alarm: Alarm,
    /// Per-detector attribution: the source alarms behind `alarm`, in
    /// bank order (one entry that equals `alarm` except for the id when
    /// a single detector fired).
    pub sources: Vec<Alarm>,
    /// The mined itemsets (the paper's Table-1 content).
    pub extraction: Extraction,
    /// Flows resident in the alarmed window when extraction ran.
    pub window_flows: usize,
    /// Reports dropped on the bounded subscriber channel before this one
    /// was emitted — a slow subscriber sees the gap size, not silence.
    pub dropped_before: u64,
}

/// An in-band degradation notice ([`StreamReport::Fault`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultNotice {
    /// What degraded.
    pub kind: FaultKind,
    /// The affected event-time window, when the fault is scoped to one
    /// (quarantine); `None` for stream-wide faults.
    pub window: Option<TimeRange>,
    /// Human-readable context (which worker, how many attempts).
    pub detail: String,
    /// True when the stream cannot produce further complete output
    /// (a shard worker died: every later window is missing that
    /// shard's records). A terminal notice is the last report of the
    /// run. Non-terminal notices (quarantine) leave the rest of the
    /// stream intact.
    pub terminal: bool,
    /// Reports dropped on the bounded subscriber channel before this
    /// one was emitted.
    pub dropped_before: u64,
}

/// The kinds of degradation a [`FaultNotice`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A shard worker died; windows merged after its death are missing
    /// its share of the records. Always terminal.
    ShardDead,
    /// Extraction panicked repeatedly on one window; the window was
    /// skipped instead of retried forever. Detection already ran — only
    /// the mined itemsets are missing.
    WindowQuarantined,
}

/// Extraction stage of the pipeline: retains the last few closed
/// windows (so flows that *overlap* the alarmed window but started in
/// an earlier one are still reachable, matching the batch store's
/// overlap query) and mines every alarm against that bounded horizon.
///
/// The match with the batch query is exact only while the horizon
/// covers every overlapping flow's start: a flow longer than
/// `horizon × window width` that started before the oldest retained
/// window is invisible here but a candidate in batch. Size `horizon`
/// above the longest flow duration you expect on the wire.
///
/// Each alarm's candidates are encoded into a columnar
/// [`EncodedFlows`] **once** — both support metrics and every round of
/// the self-adjusting top-k search mine the same matrix — and alarms on
/// the same window whose candidate selection coincides (same window,
/// same hint filter) reuse the previous alarm's matrix outright.
#[derive(Debug)]
pub struct ContinuousExtractor {
    extractor: Extractor,
    retained: VecDeque<ClosedWindow>,
    horizon: usize,
    encode_state: EncodeState,
    encode_timer: StageTimer,
    mine_timer: StageTimer,
    dict_hits: Counter,
    dict_misses: Counter,
}

impl ContinuousExtractor {
    /// Extractor retaining `horizon` closed windows (at least 1: the
    /// alarmed window itself).
    pub fn new(config: ExtractorConfig, horizon: usize) -> ContinuousExtractor {
        ContinuousExtractor {
            extractor: Extractor::new(config),
            retained: VecDeque::new(),
            horizon: horizon.max(1),
            encode_state: EncodeState::new(),
            encode_timer: StageTimer::noop(),
            mine_timer: StageTimer::noop(),
            dict_hits: Counter::noop(),
            dict_misses: Counter::noop(),
        }
    }

    /// Time candidate encoding and itemset mining into the given
    /// histograms (one observation per encoded matrix / per mined
    /// extraction). Timing never changes what is mined.
    pub fn instrument(&mut self, encode: StageTimer, mine: StageTimer) {
        self.encode_timer = encode;
        self.mine_timer = mine;
    }

    /// Report warm-dictionary traffic on the given counters
    /// (`extract.dict_hits` / `extract.dict_misses`): drained after
    /// every window so the split is visible while the stream runs.
    pub fn instrument_dict(&mut self, hits: Counter, misses: Counter) {
        self.dict_hits = hits;
        self.dict_misses = misses;
    }

    /// Number of flow records currently retained.
    pub fn resident_flows(&self) -> usize {
        self.retained.iter().map(|w| w.records.len()).sum()
    }

    /// Accept the next closed window and the merged alarms the detector
    /// bank raised on it; returns one report per merged alarm.
    pub fn push_window(
        &mut self,
        window: ClosedWindow,
        alarms: &[EnsembleAlarm],
    ) -> Vec<StreamReport> {
        let window_flows = window.records.len();
        self.retained.push_back(window);
        while self.retained.len() > self.horizon {
            self.retained.pop_front();
        }
        if alarms.is_empty() {
            return Vec::new();
        }
        // One encoded matrix per distinct candidate selection: alarms
        // sharing (window, hint filter) mine the same EncodedFlows.
        // Candidate selection walks the retained Arc segments directly,
        // in window order (deterministic: windows arrive in index
        // order) — only matching candidates are ever cloned, never the
        // whole horizon.
        let policy = self.extractor.config().policy;
        let mut encoded: Vec<(TimeRange, String, EncodedFlows)> = Vec::new();
        let reports: Vec<StreamReport> = alarms
            .iter()
            .map(|ensemble| {
                let alarm = &ensemble.alarm;
                let filter = candidate_filter(alarm, policy).to_string();
                let enc =
                    match encoded.iter().position(|(w, f, _)| *w == alarm.window && *f == filter) {
                        Some(i) => &encoded[i].2,
                        None => {
                            let cands = candidates_from_iter(
                                self.retained.iter().flat_map(|w| w.records.iter()),
                                alarm.window,
                                alarm,
                                policy,
                            );
                            let state = &mut self.encode_state;
                            let enc =
                                self.encode_timer.time(|| EncodedFlows::encode_warm(&cands, state));
                            encoded.push((alarm.window, filter, enc));
                            &encoded.last().expect("just pushed").2
                        }
                    };
                StreamReport::Alarm(AlarmReport {
                    alarm: alarm.clone(),
                    sources: ensemble.sources.clone(),
                    extraction: self.mine_timer.time(|| self.extractor.extract_encoded(enc)),
                    window_flows,
                    dropped_before: 0,
                })
            })
            .collect();
        let (hits, misses) = self.encode_state.take_stats();
        self.dict_hits.add(hits);
        self.dict_misses.add(misses);
        reports
    }

    /// Move this extractor onto a supervised worker thread. One worker,
    /// FIFO: completed reports come back in exactly the window order
    /// they were dispatched in, so the pool's subscriber-visible output
    /// is bit-identical to running the same extractor inline.
    ///
    /// `queue_depth` bounds how many windows
    /// [`dispatch`](ExtractionPool::dispatch) may run ahead of the
    /// worker; `stall` receives one observation per dispatch — 0 ns
    /// when the hand-off was non-blocking, the blocked wall time when
    /// the queue was full (the `extract.pool.stall_ns` source).
    pub fn into_pool(self, queue_depth: usize, stall: Histogram) -> ExtractionPool {
        self.into_pool_supervised(queue_depth, stall, Supervision::standalone())
    }

    /// [`into_pool`](ContinuousExtractor::into_pool) wired to the
    /// pipeline's supervision bundle (armed faults + `fault.*` /
    /// `degraded.*` counters).
    pub(crate) fn into_pool_supervised(
        self,
        queue_depth: usize,
        stall: Histogram,
        supervision: Supervision,
    ) -> ExtractionPool {
        let spec = self.rebuild_spec();
        let queue_depth = queue_depth.max(1);
        let (task_tx, result_rx, join) =
            spawn_extract_worker(self, queue_depth, supervision.faults.clone());
        ExtractionPool {
            task_tx: Some(task_tx),
            result_rx,
            join: Some(join),
            stall,
            queue_depth_cfg: queue_depth,
            spec,
            supervision,
            restarts: 0,
            pending: VecDeque::new(),
            ready: VecDeque::new(),
            inline: None,
        }
    }

    /// Everything needed to build an equivalent *fresh* extractor —
    /// same config, horizon and instrument handles, empty retained
    /// state. The supervisor rebuilds from this after a panic (the
    /// panicked extractor's state is mid-mutation and discarded).
    pub(crate) fn rebuild_spec(&self) -> RebuildSpec {
        RebuildSpec {
            config: *self.extractor.config(),
            horizon: self.horizon,
            encode_timer: self.encode_timer.clone(),
            mine_timer: self.mine_timer.clone(),
            dict_hits: self.dict_hits.clone(),
            dict_misses: self.dict_misses.clone(),
        }
    }
}

/// A recipe for an equivalent fresh [`ContinuousExtractor`]: config +
/// horizon + the shared instrument handles (the counters and timers
/// are `Arc`-backed, so a rebuilt extractor keeps reporting into the
/// same metrics).
#[derive(Debug, Clone)]
pub(crate) struct RebuildSpec {
    config: ExtractorConfig,
    horizon: usize,
    encode_timer: StageTimer,
    mine_timer: StageTimer,
    dict_hits: Counter,
    dict_misses: Counter,
}

impl RebuildSpec {
    pub(crate) fn build(&self) -> ContinuousExtractor {
        let mut extractor = ContinuousExtractor::new(self.config, self.horizon);
        extractor.instrument(self.encode_timer.clone(), self.mine_timer.clone());
        extractor.instrument_dict(self.dict_hits.clone(), self.dict_misses.clone());
        extractor
    }
}

/// One supervised inline extraction push: runs `push_window` under
/// `catch_unwind`. On a panic the window is quarantined — skipped with
/// an in-band [`FaultNotice`] instead of retried (inline retry would
/// re-panic deterministically) — and the extractor is rebuilt fresh
/// from `spec`, resetting its retained horizon.
///
/// This is the degraded path both the control thread's inline extract
/// mode and a failed-over [`ExtractionPool`] run on.
pub(crate) fn supervised_push(
    extractor: &mut ContinuousExtractor,
    spec: &RebuildSpec,
    supervision: &Supervision,
    window: ClosedWindow,
    alarms: &[EnsembleAlarm],
) -> Vec<StreamReport> {
    let range = window.range;
    let index = window.index;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if supervision.faults.fire(FaultSite::ExtractPanic) {
            panic!("fault-inject: extraction panic");
        }
        extractor.push_window(window, alarms)
    }));
    match outcome {
        Ok(batch) => batch,
        Err(_) => {
            supervision.worker_panics.inc();
            supervision.restarts.inc();
            supervision.quarantined.inc();
            *extractor = spec.build();
            vec![StreamReport::Fault(FaultNotice {
                kind: FaultKind::WindowQuarantined,
                window: Some(range),
                detail: format!(
                    "inline extraction panicked on window {index}; its itemsets are skipped and \
                     the retained-window horizon was reset"
                ),
                terminal: false,
                dropped_before: 0,
            })]
        }
    }
}

/// One queued extraction task: a closed window (snapshot by Arc-segment
/// clone) and the merged alarms the detector stage raised on it. Every
/// window is dispatched — alarm-free ones too, because the worker-side
/// extractor owns the retention horizon.
type ExtractTask = (ClosedWindow, Vec<EnsembleAlarm>);

/// The worker's answer per task: a (possibly empty) report batch, or
/// the poisoned sentinel — the worker's last word before its thread
/// exits after a caught panic.
type ExtractResult = Result<Vec<StreamReport>, WorkerPoisoned>;

/// One window queued to the worker and not yet answered, kept
/// supervisor-side so a replacement worker can be fed the exact same
/// backlog. The `ClosedWindow` clone is a few `Arc` pointers, never the
/// records.
#[derive(Debug)]
struct PendingExtract {
    window: ClosedWindow,
    alarms: Vec<EnsembleAlarm>,
    /// Times this window has panicked a worker; at
    /// [`MAX_TASK_ATTEMPTS`] it is quarantined instead of retried.
    attempts: u32,
}

fn spawn_extract_worker(
    extractor: ContinuousExtractor,
    queue_depth: usize,
    faults: Arc<ActiveFaults>,
) -> (Sender<ExtractTask>, Receiver<ExtractResult>, std::thread::JoinHandle<()>) {
    let (task_tx, task_rx) = bounded::<ExtractTask>(queue_depth.max(1));
    let (result_tx, result_rx) = unbounded::<ExtractResult>();
    let join = std::thread::Builder::new()
        .name("anomex-extract-0".into())
        // Thread spawn fails only on resource exhaustion at startup;
        // there is no pipeline to degrade into yet, so it is fatal.
        .spawn(move || pool_worker(extractor, task_rx, result_tx, faults))
        .expect("spawn extraction worker");
    (task_tx, result_rx, join)
}

/// The dedicated extraction worker: drives the moved-in
/// [`ContinuousExtractor`] over every dispatched window under
/// `catch_unwind`, reporting one (possibly empty) report batch per
/// task, in task order. A panicked task sends [`WorkerPoisoned`] and
/// ends the thread — the extractor's state is mid-mutation at that
/// point and must not be reused.
fn pool_worker(
    mut extractor: ContinuousExtractor,
    tasks: Receiver<ExtractTask>,
    results: Sender<ExtractResult>,
    faults: Arc<ActiveFaults>,
) {
    while let Ok((window, alarms)) = tasks.recv() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if faults.fire(FaultSite::ExtractPanic) {
                panic!("fault-inject: extraction worker panic");
            }
            extractor.push_window(window, &alarms)
        }));
        match outcome {
            Ok(reports) => {
                if results.send(Ok(reports)).is_err() {
                    return; // pool dropped mid-flight; nobody left to report to
                }
            }
            Err(_) => {
                // Result channel is unbounded and the supervisor holds
                // the receiver for the pool's whole life: the sentinel
                // always lands.
                let _ = results.send(Err(WorkerPoisoned));
                return;
            }
        }
    }
}

/// The asynchronous extraction stage: a [`ContinuousExtractor`] moved
/// onto a supervised worker ([`ContinuousExtractor::into_pool`]), fed
/// closed-window snapshots, answering with window-ordered report
/// batches.
///
/// The hand-off is allocation-free on the record path: a
/// [`ClosedWindow`]'s records are per-shard `Arc` segments, so the
/// snapshot clones a few pointers however large the window is. One
/// worker and FIFO channels keep completion order equal to dispatch
/// order — no control-side re-sequencing state is needed for the
/// output to be bit-identical to the inline extractor.
///
/// Deadlock freedom: the task channel is bounded (`queue_depth`
/// windows) but the result channel is unbounded, so the worker can
/// always finish what it started — a full task queue only ever blocks
/// [`dispatch`](ExtractionPool::dispatch), never the worker.
///
/// ## Supervision
///
/// The pool keeps every un-answered window in a supervisor-side
/// backlog. When the worker panics (it sends a poison sentinel and
/// exits), the pool: blames the oldest un-answered window (FIFO — all
/// earlier answers were already queued ahead of the sentinel); after
/// `MAX_TASK_ATTEMPTS` panics that window is **quarantined** —
/// skipped, with an in-band [`FaultNotice`] in its place in the output
/// order; then spawns a replacement worker with a *fresh* extractor
/// (empty retained horizon — overlap candidates from pre-restart
/// windows are lost, which the notice documents) and re-feeds it the
/// whole backlog. Restarts are bounded: after `MAX_POOL_RESTARTS` the
/// pool **fails over** to running extraction inline on the caller's thread
/// (the proven `extraction_workers = 0` path), where a panicking
/// window quarantines immediately. `dispatch`/`try_collect`/`drain`
/// therefore never panic and never hang, whatever the miner does.
pub struct ExtractionPool {
    /// `Some` until drop or failover; taken first so the worker's recv
    /// loop ends. Invariant outside method bodies: `task_tx.is_some()
    /// != inline.is_some()`.
    task_tx: Option<Sender<ExtractTask>>,
    result_rx: Receiver<ExtractResult>,
    join: Option<std::thread::JoinHandle<()>>,
    stall: Histogram,
    /// Configured run-ahead bound; replacement workers get
    /// `max(this, backlog)` so a restart never deadlocks on re-feed.
    queue_depth_cfg: usize,
    spec: RebuildSpec,
    supervision: Supervision,
    /// Replacement workers spawned so far (bounded by
    /// `supervision.max_restarts`).
    restarts: u32,
    /// Dispatched, not yet answered; front is the oldest window — the
    /// one a poison sentinel blames.
    pending: VecDeque<PendingExtract>,
    /// Completed output (reports and quarantine notices) awaiting
    /// `try_collect`/`drain`, in window order.
    ready: VecDeque<StreamReport>,
    /// `Some` once the pool failed over to inline extraction.
    inline: Option<ContinuousExtractor>,
}

impl ExtractionPool {
    /// Queue one window (with its merged alarms) to the worker,
    /// blocking only when the worker is `queue_depth` windows behind.
    /// Records the blocked time (0 for a clean hand-off) on the stall
    /// histogram.
    ///
    /// Never panics: a dead worker is recovered (restart or inline
    /// failover) before this returns, and after failover the window is
    /// simply extracted inline here.
    pub fn dispatch(&mut self, window: ClosedWindow, alarms: Vec<EnsembleAlarm>) {
        if let Some(extractor) = self.inline.as_mut() {
            let batch = supervised_push(extractor, &self.spec, &self.supervision, window, &alarms);
            self.ready.extend(batch);
            return;
        }
        self.pending.push_back(PendingExtract {
            window: window.clone(),
            alarms: alarms.clone(),
            attempts: 0,
        });
        let sent = {
            // Invariant: a live worker exists whenever `inline` is
            // `None` — every recovery path installs one or the other
            // before returning.
            let tx = self.task_tx.as_ref().expect("worker present while not failed over");
            match tx.try_send((window, alarms)) {
                Ok(()) => {
                    self.stall.record(0);
                    true
                }
                Err(TrySendError::Full(task)) => {
                    let start = if self.stall.is_enabled() { Some(Instant::now()) } else { None };
                    // A blocking send unblocks with Err when the worker
                    // dies mid-wait (its receiver drops on exit).
                    match tx.send(task) {
                        Ok(()) => {
                            if let Some(start) = start {
                                self.stall.record(start.elapsed().as_nanos() as u64);
                            }
                            true
                        }
                        Err(_) => false,
                    }
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        };
        if !sent {
            // The worker died mid-hand-off; its sentinel is already
            // queued on the result channel. pump() recovers and the
            // replacement (or the inline fallback) gets the whole
            // backlog, this window included.
            self.pump();
        }
    }

    /// Report batches of every task the worker has already finished,
    /// oldest first — never blocks. Batches arrive in dispatch (window)
    /// order; alarm-free windows yield empty batches, dropped here.
    pub fn try_collect(&mut self) -> Vec<StreamReport> {
        self.pump();
        self.ready.drain(..).collect()
    }

    /// Block until every dispatched window is extracted (or
    /// quarantined); returns the remaining reports in window order.
    /// Call at stream end, before the final metrics emission.
    ///
    /// Never panics and never hangs: every loop iteration either
    /// completes the oldest window, quarantines it (bounded attempts
    /// per window), or consumes bounded restart budget — and once the
    /// budget is gone the pool fails over and finishes the backlog
    /// inline.
    pub fn drain(&mut self) -> Vec<StreamReport> {
        while self.inline.is_none() && !self.pending.is_empty() {
            match self.result_rx.recv() {
                Ok(Ok(batch)) => self.complete_front(batch),
                Ok(Err(WorkerPoisoned)) => self.on_worker_dead(),
                // Disconnect without a sentinel: only possible while a
                // worker swap is already in progress — recover the same
                // way.
                Err(_) => self.on_worker_dead(),
            }
        }
        self.ready.drain(..).collect()
    }

    /// Windows queued to the worker and not yet picked up — the
    /// `extract.queue_depth` gauge source (0 after inline failover).
    pub fn queue_depth(&self) -> usize {
        self.task_tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Windows dispatched and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True once the pool has fallen back to inline extraction (the
    /// worker restart budget is spent).
    pub fn is_degraded(&self) -> bool {
        self.inline.is_some()
    }

    /// Drain whatever the worker has already answered, without
    /// blocking; recovers in place when an answer is the poison
    /// sentinel.
    fn pump(&mut self) {
        while self.inline.is_none() {
            match self.result_rx.try_recv() {
                Ok(Ok(batch)) => self.complete_front(batch),
                Ok(Err(WorkerPoisoned)) => self.on_worker_dead(),
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    if self.task_tx.is_some() {
                        self.on_worker_dead();
                    } else {
                        return;
                    }
                }
            }
        }
    }

    /// The oldest pending window is answered: retire it and stage its
    /// reports for collection.
    fn complete_front(&mut self, batch: Vec<StreamReport>) {
        self.pending.pop_front();
        self.ready.extend(batch);
    }

    /// The worker panicked (poison sentinel or disconnect). Reap it,
    /// blame the oldest un-answered window, then restart with a fresh
    /// extractor — or fail over to inline once the restart budget is
    /// spent.
    fn on_worker_dead(&mut self) {
        self.supervision.worker_panics.inc();
        // Reap first: after join, the dead worker's result sender is
        // gone, so the drain below sees every queued answer and then a
        // clean disconnect — never a spurious Empty.
        self.task_tx = None;
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        loop {
            match self.result_rx.try_recv() {
                Ok(Ok(batch)) => self.complete_front(batch),
                Ok(Err(WorkerPoisoned)) => {}
                Err(_) => break,
            }
        }
        // FIFO worker + in-order results: the front of the backlog is
        // exactly the task that panicked.
        if let Some(front) = self.pending.front_mut() {
            front.attempts += 1;
            if front.attempts >= MAX_TASK_ATTEMPTS {
                self.quarantine_front();
            }
        }
        if self.restarts < self.supervision.max_restarts {
            self.restarts += 1;
            self.supervision.restarts.inc();
            restart_backoff(self.restarts);
            self.respawn();
        } else {
            self.fail_over();
        }
    }

    /// Skip the front window: in its place in the output order, emit an
    /// in-band quarantine notice.
    fn quarantine_front(&mut self) {
        let Some(poisoned) = self.pending.pop_front() else { return };
        self.supervision.quarantined.inc();
        self.ready.push_back(StreamReport::Fault(FaultNotice {
            kind: FaultKind::WindowQuarantined,
            window: Some(poisoned.window.range),
            detail: format!(
                "extraction panicked {} times on window {}; its itemsets are skipped and the \
                 worker was rebuilt with an empty retained-window horizon",
                poisoned.attempts, poisoned.window.index
            ),
            terminal: false,
            dropped_before: 0,
        }));
    }

    /// Spawn a replacement worker around a fresh extractor and re-feed
    /// it the whole backlog. The replacement's queue is sized to hold
    /// the entire backlog, so the re-feed cannot block.
    fn respawn(&mut self) {
        let capacity = self.queue_depth_cfg.max(self.pending.len()).max(1);
        let (task_tx, result_rx, join) =
            spawn_extract_worker(self.spec.build(), capacity, self.supervision.faults.clone());
        for task in &self.pending {
            // Full is impossible (capacity covers the backlog); a
            // disconnect means the replacement already died on an
            // earlier re-fed task — the unsent remainder stays in
            // `pending`, and the next pump/drain recovers again.
            let _ = task_tx.send((task.window.clone(), task.alarms.clone()));
        }
        self.task_tx = Some(task_tx);
        self.result_rx = result_rx;
        self.join = Some(join);
    }

    /// Restart budget spent: degrade to inline extraction for the rest
    /// of the stream and finish the backlog here, in window order.
    fn fail_over(&mut self) {
        self.supervision.failovers.inc();
        let mut extractor = self.spec.build();
        while let Some(task) = self.pending.pop_front() {
            let batch = supervised_push(
                &mut extractor,
                &self.spec,
                &self.supervision,
                task.window,
                &task.alarms,
            );
            self.ready.extend(batch);
        }
        self.inline = Some(extractor);
    }
}

impl Drop for ExtractionPool {
    fn drop(&mut self) {
        // Disconnect the task channel so the worker's recv loop ends,
        // then join. The worker catches its own panics (the sentinel
        // protocol), so the join result carries nothing to propagate.
        self.task_tx = None;
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::interval::IntervalStat;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    fn window_with_scan(index: u64, width: u64, scan_flows: u32) -> ClosedWindow {
        let range = TimeRange::window_at(index, 0, width);
        let mut stat = IntervalStat::empty(range);
        let mut records = Vec::new();
        for p in 1..=scan_flows {
            let r = FlowRecord::builder()
                .time(range.from_ms + p as u64 % width, range.from_ms + p as u64 % width + 1)
                .src("10.0.0.9".parse().unwrap(), 55_548)
                .dst("172.16.0.1".parse().unwrap(), p as u16)
                .volume(1, 44)
                .build();
            stat.add(&r);
            records.push(r);
        }
        for i in 0..40u32 {
            let r = FlowRecord::builder()
                .time(range.from_ms + i as u64, range.from_ms + i as u64 + 10)
                .src(Ipv4Addr::from(0x0A00_0100 + i), 2_000 + i as u16)
                .dst(Ipv4Addr::from(0xAC10_0003), 80)
                .volume(3, 1_500)
                .build();
            stat.add(&r);
            records.push(r);
        }
        ClosedWindow { index, range, stat, records: records.into() }
    }

    #[test]
    fn alarm_on_window_yields_report_with_scanner_itemset() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let window = window_with_scan(3, 60_000, 400);
        let alarm = Alarm::new(0, "kl", window.range).with_hints(vec![
            anomex_flow::feature::FeatureItem::src_ip("10.0.0.9".parse().unwrap()),
        ]);
        let reports = ce.push_window(window, &[EnsembleAlarm::solo(alarm)]);
        assert_eq!(reports.len(), 1);
        let report = reports[0].as_alarm().expect("alarm report");
        assert_eq!(report.extraction.itemsets[0].flow_support, 400);
        assert_eq!(report.window_flows, 440);
        assert_eq!(report.sources.len(), 1, "solo attribution travels with the report");
        assert_eq!(report.sources[0], report.alarm);
        // Reports serialize: the console and disk sinks depend on it.
        let json = serde_json::to_string(&reports[0]).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, &reports[0]);
    }

    #[test]
    fn fault_notices_serialize_and_expose_accessors() {
        let notice = StreamReport::Fault(FaultNotice {
            kind: FaultKind::WindowQuarantined,
            window: Some(TimeRange::new(60_000, 120_000)),
            detail: "extraction panicked twice on window 1".to_string(),
            terminal: false,
            dropped_before: 2,
        });
        assert!(notice.is_fault());
        assert!(notice.as_alarm().is_none());
        assert!(notice.alarm().is_none());
        assert!(notice.extraction().is_none());
        assert!(notice.sources().is_empty());
        assert_eq!(notice.dropped_before(), 2);
        assert_eq!(notice.as_fault().unwrap().kind, FaultKind::WindowQuarantined);
        let json = serde_json::to_string(&notice).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, notice);
    }

    #[test]
    fn alarms_with_identical_selection_share_one_extraction() {
        // Two merged alarms on the same window with the same (absent)
        // hints: both reports must carry identical extractions — mined
        // from one shared encoded matrix.
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let window = window_with_scan(1, 60_000, 300);
        let a = EnsembleAlarm::solo(Alarm::new(0, "kl", window.range));
        let b = EnsembleAlarm::solo(Alarm::new(1, "pca", window.range));
        let reports = ce.push_window(window, &[a, b]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].extraction(), reports[1].extraction());
        assert_eq!(reports[0].extraction().unwrap().itemsets[0].flow_support, 300);
    }

    #[test]
    fn horizon_bounds_resident_memory() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        for index in 0..10 {
            ce.push_window(window_with_scan(index, 60_000, 50), &[]);
            assert!(ce.resident_flows() <= 2 * 90, "horizon leak at window {index}");
        }
    }

    #[test]
    fn quiet_window_emits_no_report() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        assert!(ce.push_window(window_with_scan(0, 60_000, 10), &[]).is_empty());
    }

    #[test]
    fn warm_dictionary_survives_across_windows() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let hits = Counter::standalone();
        let misses = Counter::standalone();
        ce.instrument_dict(hits.clone(), misses.clone());
        for index in 0..4 {
            let window = window_with_scan(index, 60_000, 120);
            let alarm = Alarm::new(index, "kl", window.range);
            ce.push_window(window, &[EnsembleAlarm::solo(alarm)]);
        }
        assert!(misses.get() > 0, "first window interns its items");
        assert!(
            hits.get() > misses.get(),
            "recurring population must mostly hit: {} hits / {} misses",
            hits.get(),
            misses.get()
        );
    }

    /// The pool and the inline extractor over the same window/alarm
    /// sequence produce identical reports in identical order.
    #[test]
    fn pool_output_is_bit_identical_to_inline() {
        let feed = || -> Vec<(ClosedWindow, Vec<EnsembleAlarm>)> {
            (0..6)
                .map(|index| {
                    let scan = if index % 2 == 0 { 300 + index as u32 } else { 0 };
                    let window = window_with_scan(index, 60_000, scan);
                    let alarms = if scan > 0 {
                        vec![EnsembleAlarm::solo(Alarm::new(index, "kl", window.range))]
                    } else {
                        Vec::new()
                    };
                    (window, alarms)
                })
                .collect()
        };

        let mut inline = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let mut expected = Vec::new();
        for (window, alarms) in feed() {
            expected.extend(inline.push_window(window, &alarms));
        }

        let pooled = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let mut pool = pooled.into_pool(4, Histogram::noop());
        let mut got = Vec::new();
        for (window, alarms) in feed() {
            pool.dispatch(window, alarms);
            got.extend(pool.try_collect());
        }
        got.extend(pool.drain());
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(got, expected);
    }

    #[test]
    fn pool_drain_blocks_for_every_dispatched_window() {
        let ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let mut pool = ce.into_pool(2, Histogram::noop());
        for index in 0..5 {
            let window = window_with_scan(index, 60_000, 200);
            let alarm = Alarm::new(index, "kl", window.range);
            pool.dispatch(window, vec![EnsembleAlarm::solo(alarm)]);
        }
        let reports = pool.drain();
        assert_eq!(reports.len(), 5, "every alarmed window must report");
        for (i, report) in reports.iter().enumerate() {
            let alarm = report.alarm().expect("alarm report");
            assert_eq!(alarm.window.from_ms, i as u64 * 60_000, "window order broken");
        }
    }

    #[cfg(feature = "fault-inject")]
    mod injected {
        use super::*;
        use crate::fault::{ActiveFaults, FaultPlan, FaultSite, Supervision};

        fn armed(plan: FaultPlan) -> Supervision {
            Supervision {
                faults: ActiveFaults::new(&plan, Counter::standalone()),
                worker_panics: Counter::standalone(),
                restarts: Counter::standalone(),
                failovers: Counter::standalone(),
                quarantined: Counter::standalone(),
                max_restarts: 3,
            }
        }

        fn alarmed_feed(n: u64) -> Vec<(ClosedWindow, Vec<EnsembleAlarm>)> {
            (0..n)
                .map(|index| {
                    let window = window_with_scan(index, 60_000, 200 + index as u32);
                    let alarm = Alarm::new(index, "kl", window.range);
                    (window, vec![EnsembleAlarm::solo(alarm)])
                })
                .collect()
        }

        #[test]
        fn single_panic_restarts_the_worker_and_retries_the_window() {
            let sup = armed(FaultPlan::new().once(FaultSite::ExtractPanic, 2));
            let ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
            let mut pool = ce.into_pool_supervised(4, Histogram::noop(), sup.clone());
            for (window, alarms) in alarmed_feed(4) {
                pool.dispatch(window, alarms);
            }
            let reports = pool.drain();
            assert_eq!(reports.len(), 4, "the panicked window is retried, not lost");
            for (i, report) in reports.iter().enumerate() {
                let alarm = report.alarm().expect("no quarantine on a single panic");
                assert_eq!(alarm.window.from_ms, i as u64 * 60_000, "window order broken");
            }
            assert_eq!(sup.worker_panics.get(), 1);
            assert_eq!(sup.restarts.get(), 1);
            assert_eq!(sup.quarantined.get(), 0);
            assert_eq!(sup.failovers.get(), 0);
            assert!(!pool.is_degraded());
        }

        #[test]
        fn repeated_panics_quarantine_the_window_in_order() {
            // Occurrences 2 and 3 are window 1's first try and its
            // retry: two strikes, quarantined.
            let sup = armed(
                FaultPlan::new().once(FaultSite::ExtractPanic, 2).once(FaultSite::ExtractPanic, 3),
            );
            let ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
            let mut pool = ce.into_pool_supervised(4, Histogram::noop(), sup.clone());
            for (window, alarms) in alarmed_feed(4) {
                pool.dispatch(window, alarms);
            }
            let reports = pool.drain();
            assert_eq!(reports.len(), 4);
            assert_eq!(reports[0].alarm().unwrap().window.from_ms, 0);
            let notice = reports[1].as_fault().expect("window 1 quarantined in place");
            assert_eq!(notice.kind, FaultKind::WindowQuarantined);
            assert_eq!(notice.window.map(|w| w.from_ms), Some(60_000));
            assert!(!notice.terminal);
            assert_eq!(reports[2].alarm().unwrap().window.from_ms, 2 * 60_000);
            assert_eq!(reports[3].alarm().unwrap().window.from_ms, 3 * 60_000);
            assert_eq!(sup.worker_panics.get(), 2);
            assert_eq!(sup.quarantined.get(), 1);
            assert_eq!(sup.failovers.get(), 0);
        }

        #[test]
        fn exhausted_restart_budget_fails_over_to_inline() {
            // Every extraction attempt panics, worker-side and inline:
            // the pool burns its restart budget, fails over, and every
            // window comes back as a quarantine notice — bounded time,
            // exact accounting, nothing lost silently.
            let sup = armed(FaultPlan::new().repeat_from(FaultSite::ExtractPanic, 1));
            let ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
            let mut pool = ce.into_pool_supervised(4, Histogram::noop(), sup.clone());
            let feed = alarmed_feed(5);
            let n = feed.len() as u64;
            for (window, alarms) in feed {
                pool.dispatch(window, alarms);
            }
            let reports = pool.drain();
            assert!(pool.is_degraded());
            assert_eq!(pool.in_flight(), 0);
            assert_eq!(reports.len(), 5);
            for (i, report) in reports.iter().enumerate() {
                let notice = report.as_fault().expect("every window quarantined");
                assert_eq!(notice.kind, FaultKind::WindowQuarantined);
                assert_eq!(notice.window.map(|w| w.from_ms), Some(i as u64 * 60_000));
            }
            assert_eq!(sup.quarantined.get(), n);
            assert_eq!(sup.failovers.get(), 1);
            assert_eq!(sup.restarts.get() as u32, 3 + 3, "3 worker restarts + 3 inline rebuilds");
            // Dispatch after failover keeps degrading gracefully.
            let (window, alarms) = alarmed_feed(6).pop().unwrap();
            pool.dispatch(window, alarms);
            let tail = pool.try_collect();
            assert_eq!(tail.len(), 1);
            assert!(tail[0].is_fault());
        }
    }
}

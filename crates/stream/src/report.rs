//! Continuous extraction: alarms raised on a closed window are mined
//! against the in-memory window shards immediately, and the resulting
//! [`StreamReport`]s flow to a subscriber channel.

use std::collections::VecDeque;

use anomex_core::candidate::{candidate_filter, candidates_from_slice};
use anomex_core::encode::EncodedFlows;
use anomex_core::extract::{Extraction, Extractor, ExtractorConfig};
use anomex_detect::alarm::Alarm;
use anomex_flow::store::TimeRange;
use anomex_obs::StageTimer;
use serde::{Deserialize, Serialize};

use crate::detector::EnsembleAlarm;
use crate::window::ClosedWindow;

/// One merged alarm's root-cause report, as emitted on the subscriber
/// channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// The (merged) alarm that triggered extraction.
    pub alarm: Alarm,
    /// Per-detector attribution: the source alarms behind `alarm`, in
    /// bank order (one entry that equals `alarm` except for the id when
    /// a single detector fired).
    pub sources: Vec<Alarm>,
    /// The mined itemsets (the paper's Table-1 content).
    pub extraction: Extraction,
    /// Flows resident in the alarmed window when extraction ran.
    pub window_flows: usize,
    /// Reports dropped on the bounded subscriber channel before this one
    /// was emitted — a slow subscriber sees the gap size, not silence.
    pub dropped_before: u64,
}

/// Extraction stage of the pipeline: retains the last few closed
/// windows (so flows that *overlap* the alarmed window but started in
/// an earlier one are still reachable, matching the batch store's
/// overlap query) and mines every alarm against that bounded horizon.
///
/// The match with the batch query is exact only while the horizon
/// covers every overlapping flow's start: a flow longer than
/// `horizon × window width` that started before the oldest retained
/// window is invisible here but a candidate in batch. Size `horizon`
/// above the longest flow duration you expect on the wire.
///
/// Each alarm's candidates are encoded into a columnar
/// [`EncodedFlows`] **once** — both support metrics and every round of
/// the self-adjusting top-k search mine the same matrix — and alarms on
/// the same window whose candidate selection coincides (same window,
/// same hint filter) reuse the previous alarm's matrix outright.
#[derive(Debug)]
pub struct ContinuousExtractor {
    extractor: Extractor,
    retained: VecDeque<ClosedWindow>,
    horizon: usize,
    encode_timer: StageTimer,
    mine_timer: StageTimer,
}

impl ContinuousExtractor {
    /// Extractor retaining `horizon` closed windows (at least 1: the
    /// alarmed window itself).
    pub fn new(config: ExtractorConfig, horizon: usize) -> ContinuousExtractor {
        ContinuousExtractor {
            extractor: Extractor::new(config),
            retained: VecDeque::new(),
            horizon: horizon.max(1),
            encode_timer: StageTimer::noop(),
            mine_timer: StageTimer::noop(),
        }
    }

    /// Time candidate encoding and itemset mining into the given
    /// histograms (one observation per encoded matrix / per mined
    /// extraction). Timing never changes what is mined.
    pub fn instrument(&mut self, encode: StageTimer, mine: StageTimer) {
        self.encode_timer = encode;
        self.mine_timer = mine;
    }

    /// Number of flow records currently retained.
    pub fn resident_flows(&self) -> usize {
        self.retained.iter().map(|w| w.records.len()).sum()
    }

    /// Accept the next closed window and the merged alarms the detector
    /// bank raised on it; returns one report per merged alarm.
    pub fn push_window(
        &mut self,
        window: ClosedWindow,
        alarms: &[EnsembleAlarm],
    ) -> Vec<StreamReport> {
        let window_flows = window.records.len();
        self.retained.push_back(window);
        while self.retained.len() > self.horizon {
            self.retained.pop_front();
        }
        if alarms.is_empty() {
            return Vec::new();
        }
        // One contiguous candidate source over the retained horizon, in
        // window order (deterministic: windows arrive in index order).
        let resident: Vec<anomex_flow::record::FlowRecord> =
            self.retained.iter().flat_map(|w| w.records.iter().cloned()).collect();
        // One encoded matrix per distinct candidate selection: alarms
        // sharing (window, hint filter) mine the same EncodedFlows.
        let policy = self.extractor.config().policy;
        let mut encoded: Vec<(TimeRange, String, EncodedFlows)> = Vec::new();
        alarms
            .iter()
            .map(|ensemble| {
                let alarm = &ensemble.alarm;
                let filter = candidate_filter(alarm, policy).to_string();
                let enc =
                    match encoded.iter().position(|(w, f, _)| *w == alarm.window && *f == filter) {
                        Some(i) => &encoded[i].2,
                        None => {
                            let cands =
                                candidates_from_slice(&resident, alarm.window, alarm, policy);
                            let enc = self.encode_timer.time(|| EncodedFlows::encode(&cands));
                            encoded.push((alarm.window, filter, enc));
                            &encoded.last().expect("just pushed").2
                        }
                    };
                StreamReport {
                    alarm: alarm.clone(),
                    sources: ensemble.sources.clone(),
                    extraction: self.mine_timer.time(|| self.extractor.extract_encoded(enc)),
                    window_flows,
                    dropped_before: 0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::interval::IntervalStat;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    fn window_with_scan(index: u64, width: u64, scan_flows: u32) -> ClosedWindow {
        let range = TimeRange::window_at(index, 0, width);
        let mut stat = IntervalStat::empty(range);
        let mut records = Vec::new();
        for p in 1..=scan_flows {
            let r = FlowRecord::builder()
                .time(range.from_ms + p as u64 % width, range.from_ms + p as u64 % width + 1)
                .src("10.0.0.9".parse().unwrap(), 55_548)
                .dst("172.16.0.1".parse().unwrap(), p as u16)
                .volume(1, 44)
                .build();
            stat.add(&r);
            records.push(r);
        }
        for i in 0..40u32 {
            let r = FlowRecord::builder()
                .time(range.from_ms + i as u64, range.from_ms + i as u64 + 10)
                .src(Ipv4Addr::from(0x0A00_0100 + i), 2_000 + i as u16)
                .dst(Ipv4Addr::from(0xAC10_0003), 80)
                .volume(3, 1_500)
                .build();
            stat.add(&r);
            records.push(r);
        }
        ClosedWindow { index, range, stat, records }
    }

    #[test]
    fn alarm_on_window_yields_report_with_scanner_itemset() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let window = window_with_scan(3, 60_000, 400);
        let alarm = Alarm::new(0, "kl", window.range).with_hints(vec![
            anomex_flow::feature::FeatureItem::src_ip("10.0.0.9".parse().unwrap()),
        ]);
        let reports = ce.push_window(window, &[EnsembleAlarm::solo(alarm)]);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.extraction.itemsets[0].flow_support, 400);
        assert_eq!(report.window_flows, 440);
        assert_eq!(report.sources.len(), 1, "solo attribution travels with the report");
        assert_eq!(report.sources[0], report.alarm);
        // Reports serialize: the console and disk sinks depend on it.
        let json = serde_json::to_string(report).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, report);
    }

    #[test]
    fn alarms_with_identical_selection_share_one_extraction() {
        // Two merged alarms on the same window with the same (absent)
        // hints: both reports must carry identical extractions — mined
        // from one shared encoded matrix.
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let window = window_with_scan(1, 60_000, 300);
        let a = EnsembleAlarm::solo(Alarm::new(0, "kl", window.range));
        let b = EnsembleAlarm::solo(Alarm::new(1, "pca", window.range));
        let reports = ce.push_window(window, &[a, b]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].extraction, reports[1].extraction);
        assert_eq!(reports[0].extraction.itemsets[0].flow_support, 300);
    }

    #[test]
    fn horizon_bounds_resident_memory() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        for index in 0..10 {
            ce.push_window(window_with_scan(index, 60_000, 50), &[]);
            assert!(ce.resident_flows() <= 2 * 90, "horizon leak at window {index}");
        }
    }

    #[test]
    fn quiet_window_emits_no_report() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        assert!(ce.push_window(window_with_scan(0, 60_000, 10), &[]).is_empty());
    }
}

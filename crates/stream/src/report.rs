//! Continuous extraction: alarms raised on a closed window are mined
//! against the in-memory window shards immediately — inline on the
//! control thread, or on a dedicated worker behind an
//! [`ExtractionPool`] — and the resulting [`StreamReport`]s flow to a
//! subscriber channel.

use std::collections::VecDeque;
use std::time::Instant;

use anomex_core::candidate::{candidate_filter, candidates_from_iter};
use anomex_core::encode::{EncodeState, EncodedFlows};
use anomex_core::extract::{Extraction, Extractor, ExtractorConfig};
use anomex_detect::alarm::Alarm;
use anomex_flow::store::TimeRange;
use anomex_obs::{Counter, Histogram, StageTimer};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use serde::{Deserialize, Serialize};

use crate::detector::EnsembleAlarm;
use crate::window::ClosedWindow;

/// One merged alarm's root-cause report, as emitted on the subscriber
/// channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// The (merged) alarm that triggered extraction.
    pub alarm: Alarm,
    /// Per-detector attribution: the source alarms behind `alarm`, in
    /// bank order (one entry that equals `alarm` except for the id when
    /// a single detector fired).
    pub sources: Vec<Alarm>,
    /// The mined itemsets (the paper's Table-1 content).
    pub extraction: Extraction,
    /// Flows resident in the alarmed window when extraction ran.
    pub window_flows: usize,
    /// Reports dropped on the bounded subscriber channel before this one
    /// was emitted — a slow subscriber sees the gap size, not silence.
    pub dropped_before: u64,
}

/// Extraction stage of the pipeline: retains the last few closed
/// windows (so flows that *overlap* the alarmed window but started in
/// an earlier one are still reachable, matching the batch store's
/// overlap query) and mines every alarm against that bounded horizon.
///
/// The match with the batch query is exact only while the horizon
/// covers every overlapping flow's start: a flow longer than
/// `horizon × window width` that started before the oldest retained
/// window is invisible here but a candidate in batch. Size `horizon`
/// above the longest flow duration you expect on the wire.
///
/// Each alarm's candidates are encoded into a columnar
/// [`EncodedFlows`] **once** — both support metrics and every round of
/// the self-adjusting top-k search mine the same matrix — and alarms on
/// the same window whose candidate selection coincides (same window,
/// same hint filter) reuse the previous alarm's matrix outright.
#[derive(Debug)]
pub struct ContinuousExtractor {
    extractor: Extractor,
    retained: VecDeque<ClosedWindow>,
    horizon: usize,
    encode_state: EncodeState,
    encode_timer: StageTimer,
    mine_timer: StageTimer,
    dict_hits: Counter,
    dict_misses: Counter,
}

impl ContinuousExtractor {
    /// Extractor retaining `horizon` closed windows (at least 1: the
    /// alarmed window itself).
    pub fn new(config: ExtractorConfig, horizon: usize) -> ContinuousExtractor {
        ContinuousExtractor {
            extractor: Extractor::new(config),
            retained: VecDeque::new(),
            horizon: horizon.max(1),
            encode_state: EncodeState::new(),
            encode_timer: StageTimer::noop(),
            mine_timer: StageTimer::noop(),
            dict_hits: Counter::noop(),
            dict_misses: Counter::noop(),
        }
    }

    /// Time candidate encoding and itemset mining into the given
    /// histograms (one observation per encoded matrix / per mined
    /// extraction). Timing never changes what is mined.
    pub fn instrument(&mut self, encode: StageTimer, mine: StageTimer) {
        self.encode_timer = encode;
        self.mine_timer = mine;
    }

    /// Report warm-dictionary traffic on the given counters
    /// (`extract.dict_hits` / `extract.dict_misses`): drained after
    /// every window so the split is visible while the stream runs.
    pub fn instrument_dict(&mut self, hits: Counter, misses: Counter) {
        self.dict_hits = hits;
        self.dict_misses = misses;
    }

    /// Number of flow records currently retained.
    pub fn resident_flows(&self) -> usize {
        self.retained.iter().map(|w| w.records.len()).sum()
    }

    /// Accept the next closed window and the merged alarms the detector
    /// bank raised on it; returns one report per merged alarm.
    pub fn push_window(
        &mut self,
        window: ClosedWindow,
        alarms: &[EnsembleAlarm],
    ) -> Vec<StreamReport> {
        let window_flows = window.records.len();
        self.retained.push_back(window);
        while self.retained.len() > self.horizon {
            self.retained.pop_front();
        }
        if alarms.is_empty() {
            return Vec::new();
        }
        // One encoded matrix per distinct candidate selection: alarms
        // sharing (window, hint filter) mine the same EncodedFlows.
        // Candidate selection walks the retained Arc segments directly,
        // in window order (deterministic: windows arrive in index
        // order) — only matching candidates are ever cloned, never the
        // whole horizon.
        let policy = self.extractor.config().policy;
        let mut encoded: Vec<(TimeRange, String, EncodedFlows)> = Vec::new();
        let reports: Vec<StreamReport> = alarms
            .iter()
            .map(|ensemble| {
                let alarm = &ensemble.alarm;
                let filter = candidate_filter(alarm, policy).to_string();
                let enc =
                    match encoded.iter().position(|(w, f, _)| *w == alarm.window && *f == filter) {
                        Some(i) => &encoded[i].2,
                        None => {
                            let cands = candidates_from_iter(
                                self.retained.iter().flat_map(|w| w.records.iter()),
                                alarm.window,
                                alarm,
                                policy,
                            );
                            let state = &mut self.encode_state;
                            let enc =
                                self.encode_timer.time(|| EncodedFlows::encode_warm(&cands, state));
                            encoded.push((alarm.window, filter, enc));
                            &encoded.last().expect("just pushed").2
                        }
                    };
                StreamReport {
                    alarm: alarm.clone(),
                    sources: ensemble.sources.clone(),
                    extraction: self.mine_timer.time(|| self.extractor.extract_encoded(enc)),
                    window_flows,
                    dropped_before: 0,
                }
            })
            .collect();
        let (hits, misses) = self.encode_state.take_stats();
        self.dict_hits.add(hits);
        self.dict_misses.add(misses);
        reports
    }

    /// Move this extractor onto a dedicated worker thread. One worker,
    /// FIFO: completed reports come back in exactly the window order
    /// they were dispatched in, so the pool's subscriber-visible output
    /// is bit-identical to running the same extractor inline.
    ///
    /// `queue_depth` bounds how many windows
    /// [`dispatch`](ExtractionPool::dispatch) may run ahead of the
    /// worker; `stall` receives one observation per dispatch — 0 ns
    /// when the hand-off was non-blocking, the blocked wall time when
    /// the queue was full (the `extract.pool.stall_ns` source).
    pub fn into_pool(self, queue_depth: usize, stall: Histogram) -> ExtractionPool {
        let (task_tx, task_rx) = bounded::<ExtractTask>(queue_depth.max(1));
        let (result_tx, result_rx) = unbounded::<Vec<StreamReport>>();
        let join = std::thread::Builder::new()
            .name("anomex-extract-0".into())
            .spawn(move || pool_worker(self, task_rx, result_tx))
            .expect("spawn extraction worker");
        ExtractionPool { task_tx: Some(task_tx), result_rx, join: Some(join), in_flight: 0, stall }
    }
}

/// One queued extraction task: a closed window (snapshot by Arc-segment
/// clone) and the merged alarms the detector stage raised on it. Every
/// window is dispatched — alarm-free ones too, because the worker-side
/// extractor owns the retention horizon.
type ExtractTask = (ClosedWindow, Vec<EnsembleAlarm>);

/// The dedicated extraction worker: drives the moved-in
/// [`ContinuousExtractor`] over every dispatched window, reporting one
/// (possibly empty) report batch per task, in task order.
fn pool_worker(
    mut extractor: ContinuousExtractor,
    tasks: Receiver<ExtractTask>,
    results: Sender<Vec<StreamReport>>,
) {
    while let Ok((window, alarms)) = tasks.recv() {
        let reports = extractor.push_window(window, &alarms);
        if results.send(reports).is_err() {
            return; // pool dropped mid-flight; nobody left to report to
        }
    }
}

/// The asynchronous extraction stage: a [`ContinuousExtractor`] moved
/// onto a dedicated worker ([`ContinuousExtractor::into_pool`]), fed
/// closed-window snapshots, answering with window-ordered report
/// batches.
///
/// The hand-off is allocation-free on the record path: a
/// [`ClosedWindow`]'s records are per-shard `Arc` segments, so the
/// snapshot clones a few pointers however large the window is. One
/// worker and FIFO channels keep completion order equal to dispatch
/// order — no control-side re-sequencing state is needed for the
/// output to be bit-identical to the inline extractor.
///
/// Deadlock freedom: the task channel is bounded (`queue_depth`
/// windows) but the result channel is unbounded, so the worker can
/// always finish what it started — a full task queue only ever blocks
/// [`dispatch`](ExtractionPool::dispatch), never the worker.
pub struct ExtractionPool {
    /// `Some` until drop; taken first so the worker's recv loop ends.
    task_tx: Option<Sender<ExtractTask>>,
    result_rx: Receiver<Vec<StreamReport>>,
    join: Option<std::thread::JoinHandle<()>>,
    in_flight: usize,
    stall: Histogram,
}

impl ExtractionPool {
    /// Queue one window (with its merged alarms) to the worker,
    /// blocking only when the worker is `queue_depth` windows behind.
    /// Records the blocked time (0 for a clean hand-off) on the stall
    /// histogram.
    ///
    /// # Panics
    /// Panics when the worker died (extraction panicked).
    pub fn dispatch(&mut self, window: ClosedWindow, alarms: Vec<EnsembleAlarm>) {
        let tx = self.task_tx.as_ref().expect("pool already shut down");
        match tx.try_send((window, alarms)) {
            Ok(()) => self.stall.record(0),
            Err(TrySendError::Full(task)) => {
                let start = if self.stall.is_enabled() { Some(Instant::now()) } else { None };
                tx.send(task).expect("extraction worker died");
                if let Some(start) = start {
                    self.stall.record(start.elapsed().as_nanos() as u64);
                }
            }
            Err(TrySendError::Disconnected(_)) => panic!("extraction worker died"),
        }
        self.in_flight += 1;
    }

    /// Report batches of every task the worker has already finished,
    /// oldest first — never blocks. Batches arrive in dispatch (window)
    /// order; alarm-free windows yield empty batches, dropped here.
    pub fn try_collect(&mut self) -> Vec<StreamReport> {
        let mut out = Vec::new();
        while self.in_flight > 0 {
            match self.result_rx.try_recv() {
                Ok(reports) => {
                    self.in_flight -= 1;
                    out.extend(reports);
                }
                Err(_) => break,
            }
        }
        out
    }

    /// Block until every dispatched window is extracted; returns the
    /// remaining reports in window order. Call at stream end, before
    /// the final metrics emission.
    ///
    /// # Panics
    /// Panics when the worker died (extraction panicked).
    pub fn drain(&mut self) -> Vec<StreamReport> {
        let mut out = Vec::new();
        while self.in_flight > 0 {
            let reports = self.result_rx.recv().expect("extraction worker died");
            self.in_flight -= 1;
            out.extend(reports);
        }
        out
    }

    /// Windows queued to the worker and not yet picked up — the
    /// `extract.queue_depth` gauge source.
    pub fn queue_depth(&self) -> usize {
        self.task_tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Windows dispatched and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

impl Drop for ExtractionPool {
    fn drop(&mut self) {
        // Disconnect the task channel so the worker's recv loop ends,
        // then join. A worker panic (a panicking miner) propagates
        // unless this drop is itself part of that unwind.
        self.task_tx = None;
        if let Some(join) = self.join.take() {
            if let Err(panic) = join.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::interval::IntervalStat;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    fn window_with_scan(index: u64, width: u64, scan_flows: u32) -> ClosedWindow {
        let range = TimeRange::window_at(index, 0, width);
        let mut stat = IntervalStat::empty(range);
        let mut records = Vec::new();
        for p in 1..=scan_flows {
            let r = FlowRecord::builder()
                .time(range.from_ms + p as u64 % width, range.from_ms + p as u64 % width + 1)
                .src("10.0.0.9".parse().unwrap(), 55_548)
                .dst("172.16.0.1".parse().unwrap(), p as u16)
                .volume(1, 44)
                .build();
            stat.add(&r);
            records.push(r);
        }
        for i in 0..40u32 {
            let r = FlowRecord::builder()
                .time(range.from_ms + i as u64, range.from_ms + i as u64 + 10)
                .src(Ipv4Addr::from(0x0A00_0100 + i), 2_000 + i as u16)
                .dst(Ipv4Addr::from(0xAC10_0003), 80)
                .volume(3, 1_500)
                .build();
            stat.add(&r);
            records.push(r);
        }
        ClosedWindow { index, range, stat, records: records.into() }
    }

    #[test]
    fn alarm_on_window_yields_report_with_scanner_itemset() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let window = window_with_scan(3, 60_000, 400);
        let alarm = Alarm::new(0, "kl", window.range).with_hints(vec![
            anomex_flow::feature::FeatureItem::src_ip("10.0.0.9".parse().unwrap()),
        ]);
        let reports = ce.push_window(window, &[EnsembleAlarm::solo(alarm)]);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.extraction.itemsets[0].flow_support, 400);
        assert_eq!(report.window_flows, 440);
        assert_eq!(report.sources.len(), 1, "solo attribution travels with the report");
        assert_eq!(report.sources[0], report.alarm);
        // Reports serialize: the console and disk sinks depend on it.
        let json = serde_json::to_string(report).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, report);
    }

    #[test]
    fn alarms_with_identical_selection_share_one_extraction() {
        // Two merged alarms on the same window with the same (absent)
        // hints: both reports must carry identical extractions — mined
        // from one shared encoded matrix.
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let window = window_with_scan(1, 60_000, 300);
        let a = EnsembleAlarm::solo(Alarm::new(0, "kl", window.range));
        let b = EnsembleAlarm::solo(Alarm::new(1, "pca", window.range));
        let reports = ce.push_window(window, &[a, b]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].extraction, reports[1].extraction);
        assert_eq!(reports[0].extraction.itemsets[0].flow_support, 300);
    }

    #[test]
    fn horizon_bounds_resident_memory() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        for index in 0..10 {
            ce.push_window(window_with_scan(index, 60_000, 50), &[]);
            assert!(ce.resident_flows() <= 2 * 90, "horizon leak at window {index}");
        }
    }

    #[test]
    fn quiet_window_emits_no_report() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        assert!(ce.push_window(window_with_scan(0, 60_000, 10), &[]).is_empty());
    }

    #[test]
    fn warm_dictionary_survives_across_windows() {
        let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let hits = Counter::standalone();
        let misses = Counter::standalone();
        ce.instrument_dict(hits.clone(), misses.clone());
        for index in 0..4 {
            let window = window_with_scan(index, 60_000, 120);
            let alarm = Alarm::new(index, "kl", window.range);
            ce.push_window(window, &[EnsembleAlarm::solo(alarm)]);
        }
        assert!(misses.get() > 0, "first window interns its items");
        assert!(
            hits.get() > misses.get(),
            "recurring population must mostly hit: {} hits / {} misses",
            hits.get(),
            misses.get()
        );
    }

    /// The pool and the inline extractor over the same window/alarm
    /// sequence produce identical reports in identical order.
    #[test]
    fn pool_output_is_bit_identical_to_inline() {
        let feed = || -> Vec<(ClosedWindow, Vec<EnsembleAlarm>)> {
            (0..6)
                .map(|index| {
                    let scan = if index % 2 == 0 { 300 + index as u32 } else { 0 };
                    let window = window_with_scan(index, 60_000, scan);
                    let alarms = if scan > 0 {
                        vec![EnsembleAlarm::solo(Alarm::new(index, "kl", window.range))]
                    } else {
                        Vec::new()
                    };
                    (window, alarms)
                })
                .collect()
        };

        let mut inline = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let mut expected = Vec::new();
        for (window, alarms) in feed() {
            expected.extend(inline.push_window(window, &alarms));
        }

        let pooled = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let mut pool = pooled.into_pool(4, Histogram::noop());
        let mut got = Vec::new();
        for (window, alarms) in feed() {
            pool.dispatch(window, alarms);
            got.extend(pool.try_collect());
        }
        got.extend(pool.drain());
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(got, expected);
    }

    #[test]
    fn pool_drain_blocks_for_every_dispatched_window() {
        let ce = ContinuousExtractor::new(ExtractorConfig::default(), 2);
        let mut pool = ce.into_pool(2, Histogram::noop());
        for index in 0..5 {
            let window = window_with_scan(index, 60_000, 200);
            let alarm = Alarm::new(index, "kl", window.range);
            pool.dispatch(window, vec![EnsembleAlarm::solo(alarm)]);
        }
        let reports = pool.drain();
        assert_eq!(reports.len(), 5, "every alarmed window must report");
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.alarm.window.from_ms, i as u64 * 60_000, "window order broken");
        }
    }
}

//! The ingest front-end: batched, multi-handle record intake.
//!
//! [`IngestHandle`] routes records to shard workers, tracks event time,
//! broadcasts watermarks, and decodes NetFlow packets in place. Two
//! properties make it the ~1M records/sec end of the pipeline:
//!
//! - **Batching.** Every handle keeps one flush buffer per shard
//!   (capacity [`StreamConfig::ingest_batch`], default 64) and hands
//!   full buffers to the channel in one [`send_many`] call, so the
//!   per-record synchronization cost of the channel is divided by the
//!   batch size. The NetFlow v5/v9 decode paths feed whole-packet
//!   record batches through the same buffers.
//! - **Multi-handle intake.** A handle can be [`clone`]d or
//!   [`split`](IngestHandle::split) so every collector socket of a
//!   multi-socket deployment gets its own. Correctness under multiple
//!   frontiers comes from the [`WatermarkTable`]: a lock-free array of
//!   per-handle event-time marks whose **minimum over live handles** is
//!   the only watermark ever broadcast — a record is never declared
//!   late because a *different* socket runs ahead in event time.
//!
//! [`send_many`]: crossbeam::channel::Sender::send_many
//! [`clone`]: IngestHandle::clone

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anomex_flow::error::CodecError;
use anomex_flow::record::FlowRecord;
use anomex_flow::{v5, v9};
use anomex_obs::Counter;
use crossbeam::channel::{Receiver, Sender, TrySendError};

use crate::fault::{ActiveFaults, FaultSite};
use crate::metrics::{MetricsReport, MetricsSnapshot, PipelineMetrics};
use crate::pipeline::{OverloadPolicy, PipelineHealth, ShardMsg, ShardShed, StreamStats};
// Re-exported from their historical home; the table now lives in
// `crate::watermark` so it compiles against the `sync` facade and gets
// model-checked (see that module's memory-ordering contract).
pub use crate::watermark::{WatermarkTable, MAX_HANDLES};

/// Thread handles of a running pipeline, taken by whichever handle
/// performs the final shutdown.
pub(crate) struct PipelineJoin {
    pub(crate) workers: Vec<JoinHandle<()>>,
    pub(crate) control: JoinHandle<StreamStats>,
}

impl PipelineJoin {
    /// End the stream: tell every shard to flush, join all threads,
    /// return the control thread's statistics.
    ///
    /// Shard-worker panics were already caught, counted and reported by
    /// the spawn harness, so worker joins cannot fail with anything the
    /// stats don't know. A control-thread panic is the one failure with
    /// no supervisor above it: rather than propagating (which would
    /// poison `finish` for every handle), the statistics are rebuilt
    /// from the metrics registry — the counters are `Arc`-shared and
    /// survive the thread — and the death is recorded on
    /// `fault.control_panics` / [`PipelineHealth::control_panics`].
    fn shutdown(self, senders: &[Sender<ShardMsg>], metrics: &PipelineMetrics) -> StreamStats {
        for tx in senders {
            // A worker that already exited can't take the flush; its
            // death was reported through CtrlMsg::Fault.
            let _ = tx.send(ShardMsg::Flush);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        match self.control.join() {
            Ok(stats) => stats,
            Err(_) => {
                metrics.worker_panics.inc();
                metrics.control_panics.inc();
                let shards = senders.len();
                StreamStats {
                    late_dropped: metrics.late_dropped.get(),
                    out_of_span: metrics.out_of_span.get(),
                    windows: metrics.merge_windows.get(),
                    alarms: metrics.merged_alarms.get(),
                    reports: metrics.reports_emitted.get(),
                    reports_dropped: metrics.reports_dropped.get(),
                    health: PipelineHealth {
                        worker_panics: metrics.worker_panics.get(),
                        shard_deaths: metrics.shard_deaths.get(),
                        detector_restarts: metrics.detect_restarts.get(),
                        detector_failovers: metrics.detect_failovers.get(),
                        extraction_restarts: metrics.extract_restarts.get(),
                        extraction_failovers: metrics.extract_failovers.get(),
                        quarantined_windows: metrics.quarantined_windows.get(),
                        shed_records: metrics.shed_records.get(),
                        per_shard_shed: (0..shards)
                            .filter_map(|s| {
                                let records = metrics.shard_shed(s).get();
                                (records > 0).then_some(ShardShed { shard: s, records })
                            })
                            .collect(),
                        control_panics: metrics.control_panics.get(),
                    },
                    // `finish` overwrites the ingest-side totals below;
                    // per-detector attribution died with the bank.
                    ..StreamStats::default()
                }
            }
        }
    }
}

/// State shared by every [`IngestHandle`] of one pipeline.
pub(crate) struct PipelineCore {
    pub(crate) senders: Vec<Sender<ShardMsg>>,
    pub(crate) lateness_ms: u64,
    pub(crate) watermarks: WatermarkTable,
    /// Shared metric handles. The ingest totals (records, decode
    /// errors, send failures) live here as registry counters: each
    /// handle folds its local `u64`s exactly once (in `close`, before
    /// its `live` decrement under the shutdown mutex), and the reader
    /// (`finish`) runs after observing `live == 0` under that same
    /// mutex — the mutex handshake supplies the happens-before edge,
    /// matching the counters' Relaxed internals.
    pub(crate) metrics: Arc<PipelineMetrics>,
    /// The metrics subscription, taken (once) by
    /// [`IngestHandle::metrics_reports`].
    metrics_rx: Mutex<Option<Receiver<MetricsReport>>>,
    /// What a flush does when a shard's queue stays full.
    pub(crate) overload: OverloadPolicy,
    /// The armed fault plan (zero-sized no-op without `fault-inject`).
    pub(crate) faults: Arc<ActiveFaults>,
    /// Per-shard `degraded.shed_records.<shard>` counters,
    /// pre-resolved so the flush path never formats a metric name.
    shed: Vec<Counter>,
    /// Handles not yet closed. All accesses are `Relaxed`: the
    /// decrement (in `close`) and the zero-check (in `finish`) both
    /// happen under `shutdown`'s mutex, which supplies the ordering;
    /// the increment happens before the new handle can possibly reach
    /// `close` (program order, plus whatever handoff moved the handle
    /// to another thread).
    live: AtomicUsize,
    shutdown: Mutex<ShutdownState>,
    closed_or_done: Condvar,
}

#[derive(Default)]
struct ShutdownState {
    join: Option<PipelineJoin>,
    stats: Option<StreamStats>,
}

impl PipelineCore {
    pub(crate) fn new(
        senders: Vec<Sender<ShardMsg>>,
        lateness_ms: u64,
        join: PipelineJoin,
        metrics: Arc<PipelineMetrics>,
        metrics_rx: Receiver<MetricsReport>,
        overload: OverloadPolicy,
        faults: Arc<ActiveFaults>,
    ) -> PipelineCore {
        let shed = (0..senders.len()).map(|s| metrics.shard_shed(s)).collect();
        PipelineCore {
            senders,
            lateness_ms,
            watermarks: WatermarkTable::new(),
            metrics,
            metrics_rx: Mutex::new(Some(metrics_rx)),
            overload,
            faults,
            shed,
            live: AtomicUsize::new(0),
            shutdown: Mutex::new(ShutdownState { join: Some(join), stats: None }),
            closed_or_done: Condvar::new(),
        }
    }
}

/// The ingest front-end; see the [module docs](self) for the batching
/// and multi-handle design.
///
/// Each handle is single-threaded (one per collector socket); scale
/// intake by [`split`](IngestHandle::split)ting across sockets or
/// threads — the shared watermark keeps event time correct — and scale
/// processing with [`StreamConfig::shards`].
///
/// [`StreamConfig::shards`]: crate::pipeline::StreamConfig::shards
/// [`StreamConfig::ingest_batch`]: crate::pipeline::StreamConfig::ingest_batch
pub struct IngestHandle {
    core: Arc<PipelineCore>,
    slot: usize,
    shards: usize,
    batch_cap: usize,
    watermark_every: usize,
    since_watermark: usize,
    max_event_ms: u64,
    buffers: Vec<Vec<ShardMsg>>,
    /// Records (not watermarks) currently in each shard's buffer —
    /// exact loss accounting when a flush hits a dead worker, since a
    /// failing `send_many` may get partway into the buffer before
    /// observing the disconnect.
    buffered_records: Vec<u64>,
    ingested: u64,
    decode_errors: u64,
    send_failures: u64,
    v9_cache: v9::TemplateCache,
    closed: bool,
}

impl IngestHandle {
    pub(crate) fn launch_first(
        core: Arc<PipelineCore>,
        shards: usize,
        batch_cap: usize,
        watermark_every: usize,
    ) -> IngestHandle {
        let slot = core.watermarks.acquire(0);
        core.live.fetch_add(1, Ordering::Relaxed);
        IngestHandle {
            slot,
            shards,
            batch_cap: batch_cap.max(1),
            watermark_every: watermark_every.max(1),
            since_watermark: 0,
            max_event_ms: 0,
            buffers: (0..shards).map(|_| Vec::with_capacity(batch_cap.max(1) + 1)).collect(),
            buffered_records: vec![0; shards],
            ingested: 0,
            decode_errors: 0,
            send_failures: 0,
            v9_cache: v9::TemplateCache::new(),
            core,
            closed: false,
        }
    }

    /// Ingest one record into its shard's flush buffer; a full buffer
    /// is handed to the shard worker in one batched send (the
    /// backpressure point: blocks while that shard's queue is full).
    pub fn push(&mut self, record: FlowRecord) {
        self.ingested += 1;
        if let Some(advance_ms) = self.core.faults.late_flood() {
            // Injected late-arrival flood: jump this handle's frontier
            // forward, so everything older than the advanced watermark
            // now arrives late.
            self.max_event_ms = self.max_event_ms.saturating_add(advance_ms);
        }
        if record.start_ms > self.max_event_ms {
            self.max_event_ms = record.start_ms;
        }
        let shard = record.key().shard(self.shards);
        let buffer = &mut self.buffers[shard];
        buffer.push(ShardMsg::Record(record));
        self.buffered_records[shard] += 1;
        if buffer.len() >= self.batch_cap {
            self.flush_shard(shard);
        }
        self.since_watermark += 1;
        if self.since_watermark >= self.watermark_every {
            self.broadcast_watermark();
        }
    }

    /// Ingest a batch of records through the per-shard buffers.
    pub fn push_batch(&mut self, records: impl IntoIterator<Item = FlowRecord>) {
        for record in records {
            self.push(record);
        }
    }

    /// Decode one NetFlow v5 packet and ingest its records as one
    /// whole-packet batch; returns the record count.
    ///
    /// # Errors
    /// Propagates codec errors (counted in [`StreamStats::decode_errors`]).
    pub fn push_v5(&mut self, packet: &[u8]) -> Result<usize, CodecError> {
        if self.core.faults.fire(FaultSite::DecodeError) {
            self.decode_errors += 1;
            return Err(CodecError::Corrupt("fault-inject: forced decode error"));
        }
        match v5::decode(packet) {
            Ok(decoded) => {
                let n = decoded.records.len();
                self.push_batch(decoded.records);
                Ok(n)
            }
            Err(e) => {
                self.decode_errors += 1;
                Err(e)
            }
        }
    }

    /// Decode one NetFlow v9 packet (templates cached across packets,
    /// per handle — one handle per exporter socket) and ingest its
    /// records as one whole-packet batch; returns the record count.
    ///
    /// # Errors
    /// Propagates codec errors (counted in [`StreamStats::decode_errors`]).
    pub fn push_v9(&mut self, packet: &[u8]) -> Result<usize, CodecError> {
        if self.core.faults.fire(FaultSite::DecodeError) {
            self.decode_errors += 1;
            return Err(CodecError::Corrupt("fault-inject: forced decode error"));
        }
        let mut cache = std::mem::take(&mut self.v9_cache);
        let result = v9::decode(packet, &mut cache);
        self.v9_cache = cache;
        match result {
            Ok(decoded) => {
                let n = decoded.records.len();
                self.push_batch(decoded.records);
                Ok(n)
            }
            Err(e) => {
                self.decode_errors += 1;
                Err(e)
            }
        }
    }

    /// Records ingested through this handle so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Records lost on this handle because a shard worker disconnected
    /// mid-run (also folded into [`StreamStats::send_failures`]).
    pub fn send_failures(&self) -> u64 {
        self.send_failures
    }

    /// Take the pipeline's [`MetricsReport`] subscription (first caller
    /// wins; `None` afterwards). The control thread emits on the
    /// cadence of `MetricsConfig::report_every_windows`, always
    /// finishing with one final report, and never blocks on it: reports
    /// beyond the bounded queue are dropped.
    ///
    /// [`MetricsReport`]: crate::metrics::MetricsReport
    pub fn metrics_reports(&self) -> Option<Receiver<MetricsReport>> {
        // Poison recovery: an Option<Receiver> is valid under any
        // interrupted mutation, so a panicked peer never wedges the
        // subscription.
        self.core.metrics_rx.lock().unwrap_or_else(PoisonError::into_inner).take()
    }

    /// A point-in-time snapshot of the pipeline's metric registry.
    /// Counters this handle still holds locally (records since its last
    /// close/fold) are not yet included; the final snapshot after
    /// `finish` is complete.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// The current **global** event-time watermark: the minimum
    /// frontier over every live handle, minus the lateness bound.
    pub fn watermark_ms(&self) -> u64 {
        self.core.watermarks.publish(self.slot, self.max_event_ms);
        self.core.watermarks.min_frontier().saturating_sub(self.core.lateness_ms)
    }

    /// Live handles feeding this pipeline (including this one).
    pub fn live_handles(&self) -> usize {
        self.core.watermarks.live() as usize
    }

    /// Consume this handle into `n` equivalent handles (itself plus
    /// `n - 1` clones), one per collector socket or ingest thread.
    ///
    /// # Panics
    /// Panics when `n` is zero or the pipeline would exceed
    /// [`MAX_HANDLES`] live handles.
    pub fn split(self, n: usize) -> Vec<IngestHandle> {
        assert!(n > 0, "split requires at least one handle");
        let mut handles = Vec::with_capacity(n);
        for _ in 1..n {
            handles.push(self.clone());
        }
        handles.push(self);
        handles
    }

    /// Hand every buffered record to the shard workers, fold this
    /// handle's counters into the pipeline totals, retire the
    /// watermark slot, and — when other handles remain live — broadcast
    /// one final watermark, since retiring the slot may have jumped the
    /// global minimum forward and the survivors would otherwise not
    /// tell the shards until their next cadence.
    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for shard in 0..self.shards {
            self.flush_shard(shard);
        }
        self.core.metrics.ingest_records.add(self.ingested);
        self.core.metrics.decode_errors.add(self.decode_errors);
        self.core.metrics.send_failures.add(self.send_failures);
        self.core.watermarks.release(self.slot);
        if self.core.watermarks.live() > 0 {
            let watermark =
                self.core.watermarks.min_frontier().saturating_sub(self.core.lateness_ms);
            for tx in &self.core.senders {
                // A worker that already exited can't take it; the
                // stream-end Flush covers that path.
                let _ = tx.send(ShardMsg::Watermark(watermark));
            }
        }
        // The decrement is Relaxed because it happens under the mutex:
        // the `finish` thread that observes it holds the same lock, and
        // the lock release/acquire orders the counter folds above
        // before `finish`'s reads. Poison recovery is sound here and in
        // `finish`: ShutdownState is two Options, each mutated by a
        // single assignment, so an interrupted critical section cannot
        // leave it half-written — a panicked handle on another thread
        // must not stop this one from shutting the pipeline down.
        let _guard = self.core.shutdown.lock().unwrap_or_else(PoisonError::into_inner);
        self.core.live.fetch_sub(1, Ordering::Relaxed);
        self.core.closed_or_done.notify_all();
    }

    /// End the stream: flush this handle, wait for every *other* handle
    /// to close (drop or `finish` them first), then flush every window,
    /// join all pipeline threads, and return the run's statistics.
    /// Reports still queued remain readable on the subscriber channel,
    /// which disconnects after the last one.
    ///
    /// With multiple live handles, call `finish` on one and drop (or
    /// `finish` on other threads) the rest; every `finish` call returns
    /// the same statistics.
    pub fn finish(mut self) -> StreamStats {
        let core = Arc::clone(&self.core);
        self.close();
        let mut guard = core.shutdown.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stats) = &guard.stats {
                return stats.clone();
            }
            if core.live.load(Ordering::Relaxed) == 0 {
                if let Some(join) = guard.join.take() {
                    drop(guard);
                    let mut stats = join.shutdown(&core.senders, &core.metrics);
                    stats.ingested = core.metrics.ingest_records.get();
                    stats.decode_errors = core.metrics.decode_errors.get();
                    stats.send_failures = core.metrics.send_failures.get();
                    let mut guard = core.shutdown.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.stats = Some(stats.clone());
                    core.closed_or_done.notify_all();
                    return stats;
                }
            }
            guard = core.closed_or_done.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Batched hand-off of one shard's buffer. Under
    /// [`OverloadPolicy::Backpressure`] (the default) this blocks while
    /// that shard's queue is full; under [`OverloadPolicy::Shed`] it
    /// retries up to the configured delay and then sheds the rest of
    /// the batch, with exact per-shard accounting.
    fn flush_shard(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        if self.core.metrics.timing() {
            self.core.metrics.flush_fill.record(self.buffered_records[shard]);
            self.core.metrics.ingest_queue_depth.record(self.core.senders[shard].len() as u64);
        }
        if self.core.faults.fire(FaultSite::RingFull(shard)) {
            // Injected saturation: the ring "never drains", which under
            // backpressure would block forever — so both policies shed
            // the whole buffer here, deterministically. Watermarks in
            // the buffer go down with it; the broadcast cadence
            // re-covers them.
            self.shed_buffer(shard);
            return;
        }
        match self.core.overload {
            OverloadPolicy::Backpressure => {
                let buffer = &mut self.buffers[shard];
                if self.core.senders[shard].send_many(buffer).is_err() {
                    // The shard worker is gone (disconnected mid-run):
                    // every record this buffer held — the ones a partial
                    // `send_many` pushed into the dead channel as well as
                    // the unsent tail — can never be delivered. Count
                    // them all; a vanished worker must surface in the
                    // stats, not swallow traffic.
                    self.send_failures += self.buffered_records[shard];
                    buffer.clear();
                }
                self.buffered_records[shard] = 0;
            }
            OverloadPolicy::Shed { max_queue_delay } => {
                self.flush_shard_shedding(shard, max_queue_delay);
            }
        }
    }

    /// Drop one shard's entire flush buffer, counting its records on
    /// the global and per-shard shed counters.
    fn shed_buffer(&mut self, shard: usize) {
        let shed = self.buffered_records[shard];
        if shed > 0 {
            self.core.metrics.shed_records.add(shed);
            self.core.shed[shard].add(shed);
        }
        self.buffers[shard].clear();
        self.buffered_records[shard] = 0;
    }

    /// The [`OverloadPolicy::Shed`] flush: per-message `try_send` with
    /// one deadline for the whole batch. Messages that still find the
    /// queue full after the deadline are shed (records counted exactly,
    /// per shard); a disconnected worker converts the remainder to
    /// `send_failures`, same as the backpressure path.
    fn flush_shard_shedding(&mut self, shard: usize, max_queue_delay: Duration) {
        let sender = &self.core.senders[shard];
        let deadline = Instant::now() + max_queue_delay;
        let mut shed = 0u64;
        let mut lost = 0u64;
        let mut disconnected = false;
        let mut past_deadline = false;
        for msg in self.buffers[shard].drain(..) {
            let is_record = matches!(msg, ShardMsg::Record(_));
            if disconnected {
                if is_record {
                    lost += 1;
                }
                continue;
            }
            if past_deadline && is_record {
                // Watermarks still get their single try below even past
                // the deadline — they are one message and keep the
                // survivors' windows closing — but records are shed
                // without another attempt.
                shed += 1;
                continue;
            }
            let mut pending = msg;
            loop {
                match sender.try_send(pending) {
                    Ok(()) => break,
                    Err(TrySendError::Full(back)) => {
                        if Instant::now() >= deadline {
                            past_deadline = true;
                            if is_record {
                                shed += 1;
                            }
                            break;
                        }
                        pending = back;
                        std::thread::yield_now();
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        disconnected = true;
                        if is_record {
                            lost += 1;
                        }
                        break;
                    }
                }
            }
        }
        if shed > 0 {
            self.core.metrics.shed_records.add(shed);
            self.core.shed[shard].add(shed);
        }
        self.send_failures += lost;
        self.buffered_records[shard] = 0;
    }

    /// Publish this handle's frontier, compute the global min-over-
    /// handles watermark, and append it to every shard's buffer (then
    /// flush, so idle shards advance too).
    fn broadcast_watermark(&mut self) {
        self.since_watermark = 0;
        self.core.watermarks.publish(self.slot, self.max_event_ms);
        let watermark = self.core.watermarks.min_frontier().saturating_sub(self.core.lateness_ms);
        {
            let metrics = &self.core.metrics;
            metrics.watermark_broadcasts.inc();
            if metrics.timing() {
                // Event-time health at broadcast cadence: how far the
                // watermark trails the freshest published frontier, how
                // far the handles have spread apart, and the wall lag.
                let max = self.core.watermarks.max_frontier();
                let min = self.core.watermarks.min_frontier();
                metrics.watermark_broadcast_ms.set(watermark);
                metrics.lag_event_ms.set(max.saturating_sub(watermark));
                metrics.frontier_skew_ms.set(max.saturating_sub(min));
                metrics.lag_wall_ms.set(PipelineMetrics::wall_now_ms().saturating_sub(watermark));
            }
        }
        for shard in 0..self.shards {
            self.buffers[shard].push(ShardMsg::Watermark(watermark));
            self.flush_shard(shard);
        }
    }
}

impl Clone for IngestHandle {
    /// A new equivalent handle over the same pipeline, with its own
    /// shard buffers, watermark slot (seeded from this handle's
    /// frontier) and NetFlow v9 template cache.
    fn clone(&self) -> IngestHandle {
        self.core.watermarks.publish(self.slot, self.max_event_ms);
        let slot = self.core.watermarks.acquire(self.max_event_ms);
        self.core.live.fetch_add(1, Ordering::Relaxed);
        IngestHandle {
            core: Arc::clone(&self.core),
            slot,
            shards: self.shards,
            batch_cap: self.batch_cap,
            watermark_every: self.watermark_every,
            since_watermark: 0,
            max_event_ms: self.max_event_ms,
            buffers: (0..self.shards).map(|_| Vec::with_capacity(self.batch_cap + 1)).collect(),
            buffered_records: vec![0; self.shards],
            ingested: 0,
            decode_errors: 0,
            send_failures: 0,
            v9_cache: v9::TemplateCache::new(),
            closed: false,
        }
    }
}

impl Drop for IngestHandle {
    fn drop(&mut self) {
        self.close();
    }
}

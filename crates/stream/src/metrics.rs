//! Pipeline telemetry: the metric catalog, the per-run handle bundle,
//! and the [`MetricsReport`] emitted alongside `StreamReport`s.
//!
//! Every metric the pipeline records is declared once in [`CATALOG`]
//! (name, kind, unit, stage, help); `cargo run -p xtask -- metrics-doc`
//! renders `METRICS.md` from the same array, so the committed catalog
//! cannot drift from the code. Handles live on [`PipelineMetrics`],
//! created at `launch` and shared by the intake handles, shard workers
//! and the control thread.
//!
//! Cost model: counters are always live (one Relaxed `fetch_add`, and
//! almost all of them fire per *batch*, *window* or *handle close*,
//! never per record). The timing layer — histograms, gauges, stage
//! timers, wall-clock reads — obeys [`MetricsConfig::enabled`]: when
//! off, every handle is a no-op and instrumented call sites skip the
//! value computation behind [`PipelineMetrics::timing`]. `perf_stream`
//! holds the instrumented ingest path to within 3% of the disabled one.

use anomex_obs::{MetricDef, MetricKind, Registry, StageTimer};
// Re-exported so downstream crates (console, bench, xtask) read
// snapshots through the stream prelude without a direct obs dependency.
pub use anomex_obs::{Counter, Gauge, Histogram, HistogramSummary, MetricValue, MetricsSnapshot};
use serde::{Serialize, Value};

use crate::detector::DetectorInstruments;

macro_rules! def {
    ($ident:ident, $name:literal, $kind:ident, $unit:literal, $stage:literal, $help:literal) => {
        #[doc = $help]
        pub const $ident: MetricDef = MetricDef {
            name: $name,
            kind: MetricKind::$kind,
            unit: $unit,
            stage: $stage,
            help: $help,
        };
    };
}

def!(
    INGEST_RECORDS,
    "ingest.records",
    Counter,
    "records",
    "ingest",
    "Flow records accepted across all intake handles (folded at handle close)."
);
def!(
    INGEST_DECODE_ERRORS,
    "ingest.decode_errors",
    Counter,
    "packets",
    "ingest",
    "Undecodable NetFlow export packets across all intake handles."
);
def!(
    INGEST_SEND_FAILURES,
    "ingest.send_failures",
    Counter,
    "records",
    "ingest",
    "Records dropped because a shard ring was disconnected at flush."
);
def!(
    INGEST_FLUSH_FILL,
    "ingest.flush_fill",
    Histogram,
    "records",
    "ingest",
    "Per-shard flush-buffer fill at each send_many flush (batching efficiency)."
);
def!(
    INGEST_QUEUE_DEPTH,
    "ingest.queue_depth",
    Histogram,
    "messages",
    "ingest",
    "Shard ring occupancy sampled send-side at each flush."
);
def!(
    CHANNEL_CAPACITY,
    "channel.capacity",
    Gauge,
    "messages",
    "channel",
    "Configured shard ring capacity (the bound behind both queue-depth metrics)."
);
def!(
    SHARD_RECV_BATCH,
    "shard.recv_batch",
    Histogram,
    "messages",
    "shard",
    "Messages drained per recv_many call on a shard worker."
);
def!(
    SHARD_QUEUE_DEPTH,
    "shard.queue_depth",
    Histogram,
    "messages",
    "shard",
    "Shard ring occupancy sampled receive-side after each drain."
);
def!(
    SHARD_APPLY_NS,
    "shard.apply_ns",
    Histogram,
    "ns",
    "shard",
    "Wall time a shard worker spends applying one drained batch (window pushes, closes and control sends — downstream backpressure stalls show up here)."
);
def!(
    SHARD_LATE_DROPPED,
    "shard.late_dropped",
    Counter,
    "records",
    "shard",
    "Records behind the watermark, dropped at window apply."
);
def!(
    SHARD_OUT_OF_SPAN,
    "shard.out_of_span",
    Counter,
    "records",
    "shard",
    "Records outside the configured span, dropped at window apply."
);
def!(
    MERGE_OFFER_NS,
    "merge.offer_ns",
    Histogram,
    "ns",
    "merge",
    "Wall time per cross-shard WindowManager offer (merge + ready-window emission)."
);
def!(
    MERGE_WINDOWS,
    "merge.windows",
    Counter,
    "windows",
    "merge",
    "Windows fully merged across shards and emitted by the control thread."
);
def!(
    MERGE_BATCH_REPORTS,
    "merge.batch_reports",
    Histogram,
    "reports",
    "merge",
    "Shard reports coalesced into one bulk stage/drain pass by the control thread."
);
def!(
    DETECT_PUSH_NS,
    "detect.*.push_ns",
    Histogram,
    "ns",
    "detect",
    "Wall time of one bank member's per-window push (one histogram per detector)."
);
def!(
    DETECT_WINDOWS,
    "detect.*.windows",
    Counter,
    "windows",
    "detect",
    "Windows consumed per bank member (one counter per detector)."
);
def!(
    DETECT_ALARMS,
    "detect.*.alarms",
    Counter,
    "alarms",
    "detect",
    "Alarms raised per bank member before cross-detector merging."
);
def!(
    DETECT_MERGED_ALARMS,
    "detect.merged_alarms",
    Counter,
    "alarms",
    "detect",
    "Merged ensemble alarms after same-window attribution."
);
def!(
    DETECT_POOL_QUEUE_DEPTH,
    "detect.pool.queue_depth",
    Gauge,
    "windows",
    "detect",
    "Windows broadcast to the detector worker pool and not yet picked up, summed across workers (0 when the bank runs inline on the control thread)."
);
def!(
    EXTRACT_ENCODE_NS,
    "extract.encode_ns",
    Histogram,
    "ns",
    "extract",
    "Wall time encoding a flagged window's resident flows into the transaction matrix."
);
def!(
    EXTRACT_MINE_NS,
    "extract.mine_ns",
    Histogram,
    "ns",
    "extract",
    "Wall time mining one encoded window (frequent-itemset extraction)."
);
def!(
    EXTRACT_QUEUE_DEPTH,
    "extract.queue_depth",
    Gauge,
    "windows",
    "extract",
    "Windows queued to the extraction worker and not yet picked up (0 when extraction runs inline on the control thread)."
);
def!(
    EXTRACT_POOL_STALL_NS,
    "extract.pool.stall_ns",
    Histogram,
    "ns",
    "extract",
    "Control-loop time blocked handing one window to the extraction worker (0 for a non-blocking hand-off) — the stall the async pool exists to eliminate."
);
def!(
    EXTRACT_DICT_HITS,
    "extract.dict_hits",
    Counter,
    "items",
    "extract",
    "Items resolved against the warm cross-window encode dictionary."
);
def!(
    EXTRACT_DICT_MISSES,
    "extract.dict_misses",
    Counter,
    "items",
    "extract",
    "Items newly interned into the cross-window encode dictionary (cold traffic)."
);
def!(
    REPORT_EMITTED,
    "report.emitted",
    Counter,
    "reports",
    "report",
    "StreamReports delivered to the bounded report queue."
);
def!(
    REPORT_DROPPED,
    "report.dropped",
    Counter,
    "reports",
    "report",
    "StreamReports dropped because the bounded report queue was full."
);
def!(
    REPORT_QUEUE_DEPTH,
    "report.queue_depth",
    Gauge,
    "reports",
    "report",
    "Report queue occupancy at the last metrics emission."
);
def!(
    REPORT_METRICS_DROPPED,
    "report.metrics_dropped",
    Counter,
    "reports",
    "report",
    "MetricsReports dropped because the bounded metrics queue was full (telemetry never stalls the pipeline)."
);
def!(
    WATERMARK_BROADCASTS,
    "watermark.broadcasts",
    Counter,
    "broadcasts",
    "watermark",
    "Watermark broadcasts fanned out to the shard rings."
);
def!(
    WATERMARK_BROADCAST_MS,
    "watermark.broadcast_ms",
    Gauge,
    "ms",
    "watermark",
    "Last broadcast watermark (event time: min live frontier minus bounded lateness)."
);
def!(
    WATERMARK_LAG_EVENT_MS,
    "watermark.lag_event_ms",
    Gauge,
    "ms",
    "watermark",
    "Event-time lag: freshest published frontier minus the broadcast watermark."
);
def!(
    WATERMARK_FRONTIER_SKEW_MS,
    "watermark.frontier_skew_ms",
    Gauge,
    "ms",
    "watermark",
    "Spread between the freshest and slowest live intake-handle frontiers."
);
def!(
    WATERMARK_LAG_WALL_MS,
    "watermark.lag_wall_ms",
    Gauge,
    "ms",
    "watermark",
    "Wall-clock lag: unix now minus the broadcast watermark (meaningful for live feeds; huge for replayed synthetic time)."
);
def!(
    FAULT_INJECTED,
    "fault.injected",
    Counter,
    "faults",
    "fault",
    "Faults fired by an armed FaultPlan (always 0 without the fault-inject feature)."
);
def!(
    FAULT_WORKER_PANICS,
    "fault.worker_panics",
    Counter,
    "panics",
    "fault",
    "Worker panics caught by a supervisor (shard, detector-pool or extraction workers, or a supervised inline slot)."
);
def!(
    FAULT_SHARD_DEATHS,
    "fault.shard_deaths",
    Counter,
    "shards",
    "fault",
    "Shard workers lost to a panic; each one retires its merge frontier and the run ends with a terminal StreamReport::Fault."
);
def!(
    FAULT_CONTROL_PANICS,
    "fault.control_panics",
    Counter,
    "panics",
    "fault",
    "Control-thread panics absorbed at shutdown; final stats are then reconstructed from live counters."
);
def!(
    DEGRADED_DETECT_RESTARTS,
    "degraded.detect.restarts",
    Counter,
    "restarts",
    "degraded",
    "Detector-pool workers restarted with freshly built detector state after a panic."
);
def!(
    DEGRADED_DETECT_FAILOVERS,
    "degraded.detect.failovers",
    Counter,
    "failovers",
    "degraded",
    "Detector pools that exhausted their restart budget and fell back to the inline bank on the control thread."
);
def!(
    DEGRADED_EXTRACT_RESTARTS,
    "degraded.extract.restarts",
    Counter,
    "restarts",
    "degraded",
    "Extraction workers restarted with a fresh extractor (retained-window horizon reset) after a panic."
);
def!(
    DEGRADED_EXTRACT_FAILOVERS,
    "degraded.extract.failovers",
    Counter,
    "failovers",
    "degraded",
    "Extraction pools that exhausted their restart budget and fell back to inline extraction on the control thread."
);
def!(
    DEGRADED_QUARANTINED_WINDOWS,
    "degraded.quarantined_windows",
    Counter,
    "windows",
    "degraded",
    "Windows skipped (and reported as StreamReport::Fault) after extraction panicked repeatedly on them."
);
def!(
    DEGRADED_SHED_RECORDS,
    "degraded.shed_records",
    Counter,
    "records",
    "degraded",
    "Records shed at ingest under OverloadPolicy::Shed because a shard ring stayed saturated past max_queue_delay."
);
def!(
    DEGRADED_SHED_RECORDS_SHARD,
    "degraded.shed_records.*",
    Counter,
    "records",
    "degraded",
    "Per-shard breakdown of degraded.shed_records (one counter per shard ring)."
);

/// Every metric the pipeline can record, in catalog order (grouped by
/// stage). `*` names are templates instantiated per dynamic member
/// (one per registered detector).
pub static CATALOG: &[MetricDef] = &[
    INGEST_RECORDS,
    INGEST_DECODE_ERRORS,
    INGEST_SEND_FAILURES,
    INGEST_FLUSH_FILL,
    INGEST_QUEUE_DEPTH,
    CHANNEL_CAPACITY,
    SHARD_RECV_BATCH,
    SHARD_QUEUE_DEPTH,
    SHARD_APPLY_NS,
    SHARD_LATE_DROPPED,
    SHARD_OUT_OF_SPAN,
    MERGE_OFFER_NS,
    MERGE_WINDOWS,
    MERGE_BATCH_REPORTS,
    DETECT_PUSH_NS,
    DETECT_WINDOWS,
    DETECT_ALARMS,
    DETECT_MERGED_ALARMS,
    DETECT_POOL_QUEUE_DEPTH,
    EXTRACT_ENCODE_NS,
    EXTRACT_MINE_NS,
    EXTRACT_QUEUE_DEPTH,
    EXTRACT_POOL_STALL_NS,
    EXTRACT_DICT_HITS,
    EXTRACT_DICT_MISSES,
    REPORT_EMITTED,
    REPORT_DROPPED,
    REPORT_QUEUE_DEPTH,
    REPORT_METRICS_DROPPED,
    WATERMARK_BROADCASTS,
    WATERMARK_BROADCAST_MS,
    WATERMARK_LAG_EVENT_MS,
    WATERMARK_FRONTIER_SKEW_MS,
    WATERMARK_LAG_WALL_MS,
    FAULT_INJECTED,
    FAULT_WORKER_PANICS,
    FAULT_SHARD_DEATHS,
    FAULT_CONTROL_PANICS,
    DEGRADED_DETECT_RESTARTS,
    DEGRADED_DETECT_FAILOVERS,
    DEGRADED_EXTRACT_RESTARTS,
    DEGRADED_EXTRACT_FAILOVERS,
    DEGRADED_QUARANTINED_WINDOWS,
    DEGRADED_SHED_RECORDS,
    DEGRADED_SHED_RECORDS_SHARD,
];

/// Telemetry configuration carried by `StreamConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Record the timing layer (histograms, gauges, stage timers and
    /// wall-clock reads). Counters stay live either way, so
    /// `StreamStats` is identical in both modes; disabling only stops
    /// the pipeline from measuring *itself*.
    pub enabled: bool,
    /// Emit a [`MetricsReport`] every N merged windows (0 = only the
    /// final report at pipeline shutdown).
    pub report_every_windows: u64,
    /// Bound of the metrics report queue; reports beyond it are
    /// dropped (telemetry must never stall the pipeline).
    pub report_queue: usize,
}

impl Default for MetricsConfig {
    fn default() -> MetricsConfig {
        MetricsConfig { enabled: true, report_every_windows: 1, report_queue: 64 }
    }
}

/// Periodic telemetry emission, delivered on its own bounded channel
/// next to the `StreamReport` stream (take it with
/// `IngestHandle::metrics_reports`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Emission sequence number within this pipeline run (the final
    /// shutdown report always has the highest `seq`).
    pub seq: u64,
    /// Merged windows processed when the snapshot was taken.
    pub windows: u64,
    /// Registry snapshot, sorted by metric name.
    pub snapshot: MetricsSnapshot,
}

impl MetricsReport {
    /// Records accepted so far.
    pub fn records(&self) -> u64 {
        self.snapshot.counter(INGEST_RECORDS.name)
    }

    /// Records lost to disconnected shard rings so far.
    pub fn send_failures(&self) -> u64 {
        self.snapshot.counter(INGEST_SEND_FAILURES.name)
    }

    /// StreamReports dropped on the full bounded queue so far.
    pub fn reports_dropped(&self) -> u64 {
        self.snapshot.counter(REPORT_DROPPED.name)
    }

    /// MetricsReports dropped on the full bounded metrics queue so far
    /// (this very report's predecessors).
    pub fn metrics_dropped(&self) -> u64 {
        self.snapshot.counter(REPORT_METRICS_DROPPED.name)
    }

    /// Event-time watermark lag at the last broadcast, if the timing
    /// layer recorded one.
    pub fn watermark_lag_event_ms(&self) -> Option<u64> {
        self.snapshot.gauge(WATERMARK_LAG_EVENT_MS.name)
    }

    /// Per-handle frontier skew at the last broadcast.
    pub fn frontier_skew_ms(&self) -> Option<u64> {
        self.snapshot.gauge(WATERMARK_FRONTIER_SKEW_MS.name)
    }

    /// Report-queue depth at this emission.
    pub fn report_queue_depth(&self) -> Option<u64> {
        self.snapshot.gauge(REPORT_QUEUE_DEPTH.name)
    }

    /// Worker panics caught by a supervisor so far.
    pub fn worker_panics(&self) -> u64 {
        self.snapshot.counter(FAULT_WORKER_PANICS.name)
    }

    /// Records shed under `OverloadPolicy::Shed` so far.
    pub fn shed_records(&self) -> u64 {
        self.snapshot.counter(DEGRADED_SHED_RECORDS.name)
    }

    /// Windows quarantined after repeated extraction panics so far.
    pub fn quarantined_windows(&self) -> u64 {
        self.snapshot.counter(DEGRADED_QUARANTINED_WINDOWS.name)
    }
}

impl Serialize for MetricsReport {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("windows".to_string(), Value::U64(self.windows)),
            ("snapshot".to_string(), self.snapshot.to_json()),
        ])
    }
}

/// The per-run bundle of metric handles, shared (via `Arc`) by intake
/// handles, shard workers and the control thread.
#[derive(Debug)]
pub(crate) struct PipelineMetrics {
    registry: Registry,
    timing: bool,
    pub(crate) ingest_records: Counter,
    pub(crate) decode_errors: Counter,
    pub(crate) send_failures: Counter,
    pub(crate) flush_fill: Histogram,
    pub(crate) ingest_queue_depth: Histogram,
    pub(crate) channel_capacity: Gauge,
    pub(crate) recv_batch: Histogram,
    pub(crate) shard_queue_depth: Histogram,
    pub(crate) shard_apply: StageTimer,
    pub(crate) late_dropped: Counter,
    pub(crate) out_of_span: Counter,
    pub(crate) merge_offer: StageTimer,
    pub(crate) merge_windows: Counter,
    pub(crate) merge_batch: Histogram,
    pub(crate) merged_alarms: Counter,
    pub(crate) detect_pool_queue_depth: Gauge,
    pub(crate) extract_encode: StageTimer,
    pub(crate) extract_mine: StageTimer,
    pub(crate) extract_queue_depth: Gauge,
    pub(crate) extract_stall: Histogram,
    pub(crate) dict_hits: Counter,
    pub(crate) dict_misses: Counter,
    pub(crate) reports_emitted: Counter,
    pub(crate) reports_dropped: Counter,
    pub(crate) report_queue_depth: Gauge,
    pub(crate) metrics_dropped: Counter,
    pub(crate) watermark_broadcasts: Counter,
    pub(crate) watermark_broadcast_ms: Gauge,
    pub(crate) lag_event_ms: Gauge,
    pub(crate) frontier_skew_ms: Gauge,
    pub(crate) lag_wall_ms: Gauge,
    pub(crate) fault_injected: Counter,
    pub(crate) worker_panics: Counter,
    pub(crate) shard_deaths: Counter,
    pub(crate) control_panics: Counter,
    pub(crate) detect_restarts: Counter,
    pub(crate) detect_failovers: Counter,
    pub(crate) extract_restarts: Counter,
    pub(crate) extract_failovers: Counter,
    pub(crate) quarantined_windows: Counter,
    pub(crate) shed_records: Counter,
}

impl PipelineMetrics {
    pub(crate) fn new(config: &MetricsConfig) -> PipelineMetrics {
        let registry = if config.enabled { Registry::new() } else { Registry::counters_only() };
        PipelineMetrics {
            timing: registry.timing_enabled(),
            ingest_records: registry.counter(&INGEST_RECORDS),
            decode_errors: registry.counter(&INGEST_DECODE_ERRORS),
            send_failures: registry.counter(&INGEST_SEND_FAILURES),
            flush_fill: registry.histogram(&INGEST_FLUSH_FILL),
            ingest_queue_depth: registry.histogram(&INGEST_QUEUE_DEPTH),
            channel_capacity: registry.gauge(&CHANNEL_CAPACITY),
            recv_batch: registry.histogram(&SHARD_RECV_BATCH),
            shard_queue_depth: registry.histogram(&SHARD_QUEUE_DEPTH),
            shard_apply: registry.timer(&SHARD_APPLY_NS),
            late_dropped: registry.counter(&SHARD_LATE_DROPPED),
            out_of_span: registry.counter(&SHARD_OUT_OF_SPAN),
            merge_offer: registry.timer(&MERGE_OFFER_NS),
            merge_windows: registry.counter(&MERGE_WINDOWS),
            merge_batch: registry.histogram(&MERGE_BATCH_REPORTS),
            merged_alarms: registry.counter(&DETECT_MERGED_ALARMS),
            detect_pool_queue_depth: registry.gauge(&DETECT_POOL_QUEUE_DEPTH),
            extract_encode: registry.timer(&EXTRACT_ENCODE_NS),
            extract_mine: registry.timer(&EXTRACT_MINE_NS),
            extract_queue_depth: registry.gauge(&EXTRACT_QUEUE_DEPTH),
            extract_stall: registry.histogram(&EXTRACT_POOL_STALL_NS),
            dict_hits: registry.counter(&EXTRACT_DICT_HITS),
            dict_misses: registry.counter(&EXTRACT_DICT_MISSES),
            reports_emitted: registry.counter(&REPORT_EMITTED),
            reports_dropped: registry.counter(&REPORT_DROPPED),
            report_queue_depth: registry.gauge(&REPORT_QUEUE_DEPTH),
            metrics_dropped: registry.counter(&REPORT_METRICS_DROPPED),
            watermark_broadcasts: registry.counter(&WATERMARK_BROADCASTS),
            watermark_broadcast_ms: registry.gauge(&WATERMARK_BROADCAST_MS),
            lag_event_ms: registry.gauge(&WATERMARK_LAG_EVENT_MS),
            frontier_skew_ms: registry.gauge(&WATERMARK_FRONTIER_SKEW_MS),
            lag_wall_ms: registry.gauge(&WATERMARK_LAG_WALL_MS),
            fault_injected: registry.counter(&FAULT_INJECTED),
            worker_panics: registry.counter(&FAULT_WORKER_PANICS),
            shard_deaths: registry.counter(&FAULT_SHARD_DEATHS),
            control_panics: registry.counter(&FAULT_CONTROL_PANICS),
            detect_restarts: registry.counter(&DEGRADED_DETECT_RESTARTS),
            detect_failovers: registry.counter(&DEGRADED_DETECT_FAILOVERS),
            extract_restarts: registry.counter(&DEGRADED_EXTRACT_RESTARTS),
            extract_failovers: registry.counter(&DEGRADED_EXTRACT_FAILOVERS),
            quarantined_windows: registry.counter(&DEGRADED_QUARANTINED_WINDOWS),
            shed_records: registry.counter(&DEGRADED_SHED_RECORDS),
            registry,
        }
    }

    /// The per-shard shed counter, registered under the
    /// `degraded.shed_records.<shard>` family. The registry dedupes by
    /// name, so the intake handle that sheds and the control loop that
    /// reads stats back share the same underlying counter.
    pub(crate) fn shard_shed(&self, shard: usize) -> Counter {
        self.registry
            .counter_named(format!("degraded.shed_records.{shard}"), &DEGRADED_SHED_RECORDS_SHARD)
    }

    /// Whether the timing layer records; call sites use this to skip
    /// computing values (queue lengths, wall clocks) for no-op handles.
    #[inline]
    pub(crate) fn timing(&self) -> bool {
        self.timing
    }

    /// Instruments for one bank member, registered under the
    /// `detect.<name>.*` family.
    pub(crate) fn detector_instruments(&self, name: &str) -> DetectorInstruments {
        DetectorInstruments {
            push_timer: self
                .registry
                .timer_named(format!("detect.{name}.push_ns"), &DETECT_PUSH_NS),
            windows: self.registry.counter_named(format!("detect.{name}.windows"), &DETECT_WINDOWS),
            alarms: self.registry.counter_named(format!("detect.{name}.alarms"), &DETECT_ALARMS),
        }
    }

    /// Milliseconds since the unix epoch (the wall side of
    /// `watermark.lag_wall_ms`). Only called when timing is enabled.
    pub(crate) fn wall_now_ms() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// Deterministic point-in-time snapshot.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_well_formed() {
        let mut names: Vec<&str> = CATALOG.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate metric names in CATALOG");
        for def in CATALOG {
            assert!(
                def.name.starts_with(def.stage) || def.name.starts_with(&format!("{}.", def.stage)),
                "{} should live under its stage prefix {}",
                def.name,
                def.stage
            );
            assert!(!def.unit.is_empty() && !def.help.is_empty(), "{} is undocumented", def.name);
        }
    }

    #[test]
    fn disabled_config_keeps_counters_but_not_timing() {
        let metrics =
            PipelineMetrics::new(&MetricsConfig { enabled: false, ..MetricsConfig::default() });
        assert!(!metrics.timing());
        metrics.ingest_records.add(5);
        metrics.flush_fill.record(64);
        metrics.lag_event_ms.set(1_000);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(INGEST_RECORDS.name), 5);
        assert_eq!(snap.get(INGEST_FLUSH_FILL.name), None);
        assert_eq!(snap.get(WATERMARK_LAG_EVENT_MS.name), None);
    }

    #[test]
    fn detector_instruments_register_under_the_family_names() {
        let metrics = PipelineMetrics::new(&MetricsConfig::default());
        let instr = metrics.detector_instruments("kl");
        instr.windows.add(3);
        instr.alarms.inc();
        instr.push_timer.time(|| std::hint::black_box(2 + 2));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("detect.kl.windows"), 3);
        assert_eq!(snap.counter("detect.kl.alarms"), 1);
        assert_eq!(snap.histogram("detect.kl.push_ns").map(|h| h.count), Some(1));
    }
}

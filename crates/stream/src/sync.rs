//! Synchronization facade for the lock-free watermark table:
//! `std::sync` in normal builds (plain re-exports, zero overhead), the
//! `modelcheck` shims when the `model` feature sets
//! `cfg(anomex_model)`.
//!
//! The [`crate::watermark`] module is written against this facade only,
//! so the exact same source is exercised by the model-checked suite in
//! `vendor/modelcheck/tests/watermark_model.rs` (instrumented atomics
//! under a controlled scheduler, part of tier-1) and shipped in
//! production builds (real atomics).

#[cfg(not(anomex_model))]
mod imp {
    pub use std::sync::atomic::{AtomicU64, Ordering};
}

#[cfg(anomex_model)]
mod imp {
    pub use modelcheck::sync::{AtomicU64, Ordering};
}

pub(crate) use imp::*;

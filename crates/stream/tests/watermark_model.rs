//! Model-checked watermark suite against the *linked* `anomex-stream`
//! library (not a `#[path]` copy), available when the `model` feature
//! routes the crate's `sync` facade onto the modelcheck shims:
//!
//! ```sh
//! cargo test -p anomex-stream --features model --test watermark_model
//! ```
//!
//! (Target the test explicitly: with the feature on, the watermark
//! atomics only work under the model scheduler, so the std-threaded
//! pipeline tests and doctests are not meaningful in this
//! configuration.) The always-on tier-1 twin of this runner lives in
//! `vendor/modelcheck/tests/watermark_model.rs`.

#![cfg(anomex_model)]

pub use anomex_stream::watermark;

#[path = "suites/watermark.rs"]
mod suite;

//! Chaos suite: deterministic fault injection through the full
//! pipeline (`--features fault-inject`).
//!
//! Every scenario here replays a fixed corpus against an armed
//! [`FaultPlan`] and asserts three things the supervision layer
//! promises:
//!
//! 1. **bounded-time completion** — a faulted run finishes; it never
//!    hangs (each run executes under a watchdog deadline);
//! 2. **exact accounting** — caught panics, restarts, failovers, shed
//!    records and quarantined windows land on the `fault.*` /
//!    `degraded.*` counters with the exact planned counts;
//! 3. **fault-free transparency** — with the feature compiled in but
//!    nothing armed, output stays bit-identical across every
//!    (telemetry × detector_workers × extraction_workers) mode.

#![cfg(feature = "fault-inject")]

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use anomex_detect::kl::KlConfig;
use anomex_detect::pca::PcaConfig;
use anomex_flow::prelude::*;
use anomex_gen::prelude::*;
use anomex_stream::prelude::*;

const WIDTH_MS: u64 = 60_000;
const WINDOWS: u64 = 8;
/// Watchdog per faulted run: generous next to the worst case (a few
/// restart backoffs at ≤160ms each) but far below any CI timeout.
const DEADLINE: Duration = Duration::from_secs(120);

/// A GEANT-like corpus: 8 minutes of background with a port scan in
/// the 7th minute, sorted by start time.
fn corpus() -> (Vec<FlowRecord>, TimeRange) {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.3.0.99".parse().unwrap(),
        "172.16.5.5".parse().unwrap(),
    );
    spec.flows = 2_000;
    spec.start_ms = 6 * WIDTH_MS;
    spec.duration_ms = WIDTH_MS;
    let mut scenario = Scenario::new("chaos", 0xC4A05, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = 4_000;
    scenario.background.duration_ms = WINDOWS * WIDTH_MS;
    let built = scenario.build();
    let mut records = built.store.snapshot();
    records.sort_by_key(|r| r.start_ms);
    (records, scenario.window())
}

/// A two-detector config so `detector_workers: 2` is a real fan-out
/// (the pool clamps workers to the detector count).
fn config(
    span: TimeRange,
    detector_workers: usize,
    extraction_workers: usize,
    telemetry: bool,
    faults: FaultPlan,
) -> StreamConfig {
    let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };
    let pca = PcaConfig { interval_ms: WIDTH_MS, ..PcaConfig::default() };
    StreamConfig {
        shards: 2,
        span: Some(span),
        detectors: DetectorRegistry::from_specs(&[
            DetectorSpec::Kl(kl),
            DetectorSpec::Pca(pca, 12),
        ]),
        detector_workers,
        extraction_workers,
        metrics: MetricsConfig { enabled: telemetry, ..MetricsConfig::default() },
        faults,
        ..StreamConfig::default()
    }
}

/// Run one pipeline to completion under a watchdog: panics if the
/// faulted run fails to finish inside `DEADLINE` (a hang is exactly
/// the regression this suite exists to catch).
fn run_bounded(config: StreamConfig, records: Vec<FlowRecord>) -> (StreamStats, Vec<StreamReport>) {
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        let (mut ingest, reports) = launch(config);
        ingest.push_batch(records);
        let stats = ingest.finish();
        let received: Vec<StreamReport> = reports.iter().collect();
        let _ = tx.send((stats, received));
    });
    let out = rx.recv_timeout(DEADLINE).expect("faulted pipeline must finish in bounded time");
    runner.join().expect("runner thread");
    out
}

#[test]
fn fault_free_runs_stay_bit_identical_with_injection_compiled_in() {
    // The compiled-in (but unarmed) injection points must be pure
    // no-ops: same reports, same stats, in every mode — the same
    // invariant `stream_equivalence.rs` pins for the default build.
    let (records, span) = corpus();
    let baseline = run_bounded(config(span, 0, 0, false, FaultPlan::new()), records.clone());
    assert!(baseline.0.health.healthy(), "clean run must report a clean bill of health");
    assert!(baseline.0.alarms >= 1, "corpus must trip the ensemble");
    for (telemetry, detector_workers, extraction_workers) in
        [(true, 0, 0), (true, 2, 0), (false, 0, 1), (true, 2, 1)]
    {
        let (stats, received) = run_bounded(
            config(span, detector_workers, extraction_workers, telemetry, FaultPlan::new()),
            records.clone(),
        );
        assert_eq!(
            stats, baseline.0,
            "telemetry={telemetry} detector_workers={detector_workers} \
             extraction_workers={extraction_workers} changed the statistics"
        );
        assert_eq!(
            received, baseline.1,
            "telemetry={telemetry} detector_workers={detector_workers} \
             extraction_workers={extraction_workers} changed a report"
        );
    }
}

#[test]
fn seeded_chaos_plans_complete_with_consistent_accounting() {
    // Many distinct (but fully reproducible) failure schedules through
    // the same corpus: whatever the seed arms, the run must terminate
    // and its health read-back must agree with the in-band reports.
    let (records, span) = corpus();
    for seed in 0..8u64 {
        let plan = FaultPlan::seeded(seed, 2, 2);
        let (stats, received) = run_bounded(config(span, 2, 1, true, plan), records.clone());
        assert!(stats.windows <= WINDOWS, "seed {seed}: window accounting overran the span");
        let terminal = received.iter().filter(|r| r.as_fault().is_some_and(|f| f.terminal)).count();
        if stats.health.shard_deaths > 0 {
            assert_eq!(terminal, 1, "seed {seed}: shard death must end in ONE terminal notice");
            assert!(
                received.last().expect("terminal notice delivered").is_fault(),
                "seed {seed}: the terminal notice must be the run's last report"
            );
        } else {
            assert_eq!(terminal, 0, "seed {seed}: no shard died, nothing may be terminal");
            assert_eq!(stats.windows, WINDOWS, "seed {seed}: surviving runs close every window");
        }
        assert_eq!(
            stats.health.quarantined_windows,
            received.iter().filter(|r| r.as_fault().is_some_and(|f| !f.terminal)).count() as u64,
            "seed {seed}: quarantine counter must match the in-band notices"
        );
    }
}

#[test]
fn shard_death_ends_the_run_with_a_terminal_fault_notice() {
    let (records, span) = corpus();
    let plan = FaultPlan::new().once(FaultSite::ShardPanic(1), 1);
    let (stats, received) = run_bounded(config(span, 0, 0, true, plan), records);
    assert_eq!(stats.health.shard_deaths, 1);
    assert!(stats.health.worker_panics >= 1);
    let last = received.last().expect("the terminal notice is delivered");
    let notice = last.as_fault().expect("the last report must be the fault notice");
    assert_eq!(notice.kind, FaultKind::ShardDead);
    assert!(notice.terminal);
    assert_eq!(
        received.iter().filter(|r| r.is_fault()).count(),
        1,
        "exactly one notice for one dead shard"
    );
}

#[test]
fn forced_ring_full_sheds_with_exact_per_shard_accounting() {
    // One shard, one record per flush, every flush forced full: under
    // OverloadPolicy::Shed every record must be shed — and counted,
    // exactly, on the global and the per-shard counter.
    let n = 50u64;
    let records: Vec<FlowRecord> = (0..n)
        .map(|i| {
            FlowRecord::builder()
                .time(i * 1_000, i * 1_000 + 10)
                .src("10.0.0.1".parse().unwrap(), 1_234)
                .dst("172.16.0.1".parse().unwrap(), 80)
                .volume(1, 100)
                .build()
        })
        .collect();
    let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };
    let config = StreamConfig {
        shards: 1,
        ingest_batch: 1,
        span: Some(TimeRange::new(0, WIDTH_MS)),
        detectors: DetectorRegistry::kl(kl),
        overload: OverloadPolicy::Shed { max_queue_delay: Duration::ZERO },
        faults: FaultPlan::new().repeat_from(FaultSite::RingFull(0), 1),
        ..StreamConfig::default()
    };
    let (stats, received) = run_bounded(config, records);
    assert_eq!(stats.ingested, n);
    assert_eq!(stats.health.shed_records, n, "every record was shed");
    assert_eq!(stats.health.per_shard_shed, vec![ShardShed { shard: 0, records: n }]);
    assert!(received.is_empty(), "no record reached a detector, so nothing may report");
}

#[test]
fn shed_policy_with_generous_deadline_matches_backpressure() {
    // An un-saturated ring never hits the deadline, so Shed must be
    // byte-for-byte equivalent to Backpressure on the same corpus.
    let (records, span) = corpus();
    let backpressure = run_bounded(config(span, 0, 0, true, FaultPlan::new()), records.clone());
    let mut shed_config = config(span, 0, 0, true, FaultPlan::new());
    shed_config.overload = OverloadPolicy::Shed { max_queue_delay: Duration::from_secs(5) };
    let shed = run_bounded(shed_config, records);
    assert_eq!(shed.0, backpressure.0, "shed policy leaked into the statistics");
    assert_eq!(shed.1, backpressure.1, "shed policy changed a report");
    assert_eq!(shed.0.health.shed_records, 0);
}

#[test]
fn single_worker_panics_recover_at_every_task_index() {
    // Sweep the panic over every dispatch index and both pool kinds
    // (the deterministic stand-in for "panic each pool at a random
    // task"): one caught panic, one restart, zero failovers, zero
    // quarantines — and detection still closes every window.
    let (records, span) = corpus();
    for at in 1..=WINDOWS {
        for worker in 0..2usize {
            let plan = FaultPlan::new().once(FaultSite::DetectorPanic(worker), at);
            let (stats, received) = run_bounded(config(span, 2, 0, true, plan), records.clone());
            assert_eq!(stats.windows, WINDOWS, "at={at} worker={worker}");
            assert_eq!(stats.health.worker_panics, 1, "at={at} worker={worker}");
            assert_eq!(stats.health.detector_restarts, 1, "at={at} worker={worker}");
            assert_eq!(stats.health.detector_failovers, 0, "at={at} worker={worker}");
            assert!(received.iter().all(|r| !r.is_fault()), "at={at} worker={worker}");
        }
        let plan = FaultPlan::new().once(FaultSite::ExtractPanic, at);
        let (stats, received) = run_bounded(config(span, 0, 1, true, plan), records.clone());
        assert_eq!(stats.windows, WINDOWS, "extract at={at}");
        assert_eq!(stats.health.worker_panics, 1, "extract at={at}");
        assert_eq!(stats.health.extraction_restarts, 1, "extract at={at}");
        assert_eq!(stats.health.quarantined_windows, 0, "one panic retries, never quarantines");
        assert!(received.iter().all(|r| !r.is_fault()), "extract at={at}");
    }
}

#[test]
fn repeated_extraction_panics_quarantine_every_window_without_hanging() {
    // Extraction is deterministically broken for the whole run: every
    // window must come back as a non-terminal quarantine notice (in
    // window order, after bounded retries and the pool's failover to
    // the equally-broken inline path) — never a hang, never silence.
    let (records, span) = corpus();
    let plan = FaultPlan::new().repeat_from(FaultSite::ExtractPanic, 1);
    let (stats, received) = run_bounded(config(span, 0, 1, true, plan), records);
    assert_eq!(stats.windows, WINDOWS, "detection is untouched by extraction faults");
    assert_eq!(stats.health.quarantined_windows, WINDOWS);
    assert_eq!(received.len(), WINDOWS as usize);
    for report in &received {
        let notice = report.as_fault().expect("every window quarantined");
        assert_eq!(notice.kind, FaultKind::WindowQuarantined);
        assert!(!notice.terminal, "quarantine degrades, it does not end the stream");
        assert!(notice.window.is_some(), "quarantine is scoped to its window");
    }
}

#[test]
fn forced_decode_error_is_counted_not_fatal() {
    let (records, span) = corpus();
    let packets = anomex_flow::v5::encode_all(&records, anomex_flow::v5::ExportBase::epoch(), 0)
        .expect("encode v5 stream");
    assert!(packets.len() >= 3, "corpus must span several packets");
    let plan = FaultPlan::new().once(FaultSite::DecodeError, 2);
    let (mut ingest, reports) = launch(config(span, 0, 0, true, plan));
    let mut decoded = 0u64;
    let mut failed = 0u64;
    for packet in &packets {
        match ingest.push_v5(packet) {
            Ok(n) => decoded += n as u64,
            Err(_) => failed += 1,
        }
    }
    assert_eq!(failed, 1, "exactly the armed packet fails");
    let stats = ingest.finish();
    assert_eq!(stats.decode_errors, 1);
    assert_eq!(stats.ingested, decoded);
    assert!(stats.health.healthy(), "a decode error degrades nothing downstream");
    drop(reports);
}

#[test]
fn late_arrival_flood_is_dropped_and_accounted_not_fatal() {
    // Jump the handle's event-time frontier 30 minutes forward mid
    // corpus: everything older now floods in behind the watermark and
    // must be dropped *and counted* while the pipeline stays healthy.
    let (records, span) = corpus();
    let plan = FaultPlan::new().late_flood(1_000, 30 * WIDTH_MS);
    let (stats, _received) = run_bounded(config(span, 0, 0, true, plan), records);
    assert!(stats.late_dropped > 0, "the flood must actually strand records");
    assert!(stats.health.healthy(), "late drops are ingest accounting, not degradation");
    assert!(stats.windows <= WINDOWS);
}

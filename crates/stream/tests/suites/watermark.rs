//! Model-checked watermark-table protocol suite. Compiled twice:
//!
//! - by `vendor/modelcheck/tests/watermark_model.rs` (tier-1, always
//!   on): the crate root `#[path]`-includes `watermark.rs` against a
//!   local `mod sync` that re-exports the shims, so `crate::watermark`
//!   is an instrumented copy of the exact production source;
//! - by `crates/stream/tests/watermark_model.rs` under
//!   `--features model`: `crate::watermark` is the real `anomex-stream`
//!   module compiled with `cfg(anomex_model)`.
//!
//! Each test runs under the model scheduler (bounded exhaustive DFS
//! over interleavings), and together they pin the protocol invariants
//! the table's Relaxed/Release/Acquire downgrades must preserve: slot
//! exclusivity, zero-before-release, seed-on-acquire, and no frontier
//! overshoot, in every explored schedule (the table holds no
//! non-atomic data, so the invariant assertions — not the race
//! detector — are the teeth here; negative_watermark.rs proves they
//! bite). Budgets are deliberately small to keep tier-1 wall-clock
//! flat — `ANOMEX_MODEL_EXECUTIONS` scales them up in the nightly lane.

use std::sync::Arc;

use modelcheck::{thread, Model};

use crate::watermark::WatermarkTable;

fn model(max_executions: usize) -> Model {
    // The env override (if any) still wins so CI can deepen the search.
    let default = Model::default();
    Model { max_executions: default.max_executions.min(max_executions), ..default }
}

/// Two racing `acquire` calls must claim distinct slots (the CAS loop's
/// exclusivity), and releasing both must empty the table.
#[test]
fn concurrent_acquires_claim_distinct_slots() {
    model(1_500).check(|| {
        let table = Arc::new(WatermarkTable::new());
        let t = {
            let table = Arc::clone(&table);
            // Holds its slot until after the exclusivity check.
            thread::spawn(move || table.acquire(10))
        };
        let mine = table.acquire(20);
        let theirs = t.join().unwrap();
        assert_ne!(mine, theirs, "two live handles must never share a slot");
        table.release(mine);
        table.release(theirs);
        assert_eq!(table.live(), 0);
    });
}

/// Zero-before-release: a handle that acquires concurrently with (or
/// after) another's retirement must never observe the retiree's stale
/// high mark through `min_frontier`. This is exactly the invariant the
/// Release fetch_and / Acquire-load pairing on `active` carries once
/// the marks themselves are Relaxed.
#[test]
fn recycled_slot_never_resurrects_a_stale_mark() {
    model(2_000).check(|| {
        let table = Arc::new(WatermarkTable::new());
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let slot = table.acquire(7);
                // Only this handle is guaranteed live; the other is
                // either still live at 900 (min 7) or retired (min 7,
                // or 0 mid-seed) — 900 alone must be impossible once
                // our seed landed.
                let frontier = table.min_frontier();
                assert!(frontier <= 7, "stale high mark leaked into the frontier: {frontier}");
                table.release(slot);
            })
        };
        let slot = table.acquire(0);
        table.publish(slot, 900);
        table.release(slot);
        t.join().unwrap();
        assert_eq!(table.min_frontier(), 0, "empty table is maximally conservative");
    });
}

/// Seed-on-acquire: a clone seeded with its parent's frontier never
/// drags the global minimum below the parent's already-published mark,
/// no matter how the claim interleaves with the parent publishing.
#[test]
fn seeded_acquire_never_regresses_past_the_parent() {
    model(2_000).check(|| {
        let table = Arc::new(WatermarkTable::new());
        let parent = table.acquire(0);
        table.publish(parent, 500);
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                // The clone path: seed with the parent's frontier.
                let child = table.acquire(500);
                let frontier = table.min_frontier();
                assert_eq!(frontier, 500, "clone must not stall the watermark: {frontier}");
                child
            })
        };
        // Parent racing ahead must not change the min (child pins 500).
        table.publish(parent, 600);
        let child = t.join().unwrap();
        table.release(parent);
        table.release(child);
    });
}

/// The scanned frontier never overshoots what the slowest live handle
/// actually published, under concurrent publishes from both handles.
#[test]
fn min_frontier_never_overshoots_the_slowest_publisher() {
    model(1_500).check(|| {
        let table = Arc::new(WatermarkTable::new());
        let slow = table.acquire(0);
        let fast = table.acquire(0);
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || table.publish(fast, 200))
        };
        table.publish(slow, 100);
        let frontier = table.min_frontier();
        assert!(
            frontier == 0 || frontier == 100,
            "frontier {frontier} overshot the slow handle's published 100"
        );
        t.join().unwrap();
        table.release(slow);
        table.release(fast);
    });
}

/// The telemetry scan (`max_frontier`) obeys the same zero-before-
/// release contract as `min_frontier`: under concurrent publishes it
/// never reports a value nobody published, and a retired handle's high
/// mark never leaks through a recycled slot.
#[test]
fn max_frontier_never_invents_a_mark() {
    model(1_500).check(|| {
        let table = Arc::new(WatermarkTable::new());
        let slow = table.acquire(0);
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let fast = table.acquire(0);
                table.publish(fast, 300);
                table.release(fast);
            })
        };
        table.publish(slow, 100);
        // Our own publish(100) is program-order before the scan, so the
        // result is 100, or 300 while the fast handle still shows live.
        let max = table.max_frontier();
        assert!(max == 100 || max == 300, "max_frontier {max} is a value no handle ever published");
        t.join().unwrap();
        // Only `slow` is live now: the retiree's 300 must be gone.
        assert_eq!(table.max_frontier(), 100, "retired mark leaked through a dead slot");
        table.release(slow);
        assert_eq!(table.max_frontier(), 0);
    });
}

/// Multi-word scan: with the first mask word saturated, a slot in the
/// second word churns (acquire/publish/release) while the main thread
/// scans — the per-word ordering contract must hold across the word
/// boundary. The scan may observe the second-word handle at any stage
/// (absent, in its claim-seed gap, published) but must never invent a
/// value and never overshoot the slowest live handle.
#[test]
fn multi_word_min_frontier_scan_never_overshoots() {
    model(600).check(|| {
        let table = Arc::new(WatermarkTable::with_capacity(65));
        // Saturate word 0 so the next claim lands in word 1 (the
        // single-threaded prefix costs trace length, not schedules).
        let word0: Vec<usize> = (0..64).map(|_| table.acquire(1_000)).collect();
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let slot = table.acquire(0);
                assert_eq!(slot, 64, "word 0 is full — the claim must cross the boundary");
                table.publish(slot, 5);
                table.release(slot);
            })
        };
        let frontier = table.min_frontier();
        assert!(
            frontier == 0 || frontier == 5 || frontier == 1_000,
            "frontier {frontier} is a value no handle ever held"
        );
        t.join().unwrap();
        assert_eq!(
            table.min_frontier(),
            1_000,
            "the retired second-word slot must stop contributing"
        );
        for slot in word0 {
            table.release(slot);
        }
        assert_eq!(table.live(), 0);
    });
}

/// Full-protocol churn: two handles acquire, publish, scan and release
/// concurrently; every interleaving must keep the table race-free and
/// end empty. The model's race detector is the real assertion here.
#[test]
fn concurrent_churn_is_race_free_and_drains() {
    model(1_500).check(|| {
        let table = Arc::new(WatermarkTable::new());
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let slot = table.acquire(1_000);
                table.publish(slot, 1_001);
                let _ = table.min_frontier();
                table.release(slot);
            })
        };
        let slot = table.acquire(2_000);
        table.publish(slot, 2_001);
        let _ = table.min_frontier();
        table.release(slot);
        t.join().unwrap();
        assert_eq!(table.live(), 0);
        assert_eq!(table.min_frontier(), 0);
    });
}

//! Allocation accounting for the zero-clone extraction hand-off.
//!
//! Two claims the async extraction pool depends on, asserted against a
//! counting allocator rather than taken on faith:
//!
//! 1. snapshotting a [`ClosedWindow`] (what a pool dispatch does) is a
//!    pointer bump — its cost must not scale with the record count;
//! 2. mining an alarmed window allocates for the *candidates*, never
//!    for the retained horizon — the old per-alarm
//!    "concatenate every retained window into one `Vec`" clone must
//!    stay dead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use anomex_core::prelude::ExtractorConfig;
use anomex_detect::interval::IntervalStat;
use anomex_detect::prelude::Alarm;
use anomex_flow::prelude::*;
use anomex_stream::prelude::*;

/// Pass-through to the system allocator that counts every allocation
/// (count and bytes requested). Deallocations are left uncounted on
/// purpose: the assertions below are about how much *new* memory a
/// code path asks for, not its resident footprint.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through — every pointer handed out comes from
// `System.alloc` with the caller's layout, and `dealloc` returns the
// same pointer/layout pair straight to `System.dealloc`; the counters
// are lock-free atomics and themselves allocate nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout
    // unchanged, so `System`'s guarantees (alignment, size, null on
    // failure) carry over verbatim; the counter updates cannot fail or
    // allocate.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds the `alloc`
        // layout contract.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: every pointer this allocator hands out comes from
    // `System.alloc`, so returning it to `System.dealloc` with the
    // caller's (identical) layout satisfies `dealloc`'s contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System.alloc` in `alloc`
        // above with this same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn reset_counters() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

fn bytes_allocated() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// A window of `flows` near-identical benign records: huge record
/// payload, tiny feature distributions (so an [`IntervalStat`] clone
/// stays small and the record cost dominates by construction).
fn bulk_window(index: u64, flows: u32) -> ClosedWindow {
    let range = TimeRange::window_at(index, 0, 60_000);
    let mut stat = IntervalStat::empty(range);
    let mut records = Vec::new();
    for i in 0..flows {
        let r = FlowRecord::builder()
            .time(range.from_ms + i as u64 % 60_000, range.from_ms + i as u64 % 60_000 + 10)
            .src("10.0.0.7".parse().unwrap(), 4_000)
            .dst("172.16.0.3".parse().unwrap(), 80)
            .volume(3, 1_500)
            .build();
        stat.add(&r);
        records.push(r);
    }
    ClosedWindow { index, range, stat, records: records.into() }
}

/// A window holding a port scan (distinct dst ports) on top of a small
/// benign mix — enough structure for the extractor to report on.
fn scan_window(index: u64, scan_flows: u32) -> ClosedWindow {
    let range = TimeRange::window_at(index, 0, 60_000);
    let mut stat = IntervalStat::empty(range);
    let mut records = Vec::new();
    for p in 1..=scan_flows {
        let r = FlowRecord::builder()
            .time(range.from_ms + p as u64 % 60_000, range.from_ms + p as u64 % 60_000 + 1)
            .src("10.66.66.66".parse().unwrap(), 55_548)
            .dst("172.16.0.99".parse().unwrap(), p as u16)
            .volume(1, 44)
            .build();
        stat.add(&r);
        records.push(r);
    }
    ClosedWindow { index, range, stat, records: records.into() }
}

#[test]
fn snapshots_and_alarmed_extraction_never_reclone_the_horizon() {
    let record_bytes = std::mem::size_of::<FlowRecord>() as u64;

    // --- Claim 1: the dispatch snapshot is O(1) in the record count.
    let big = bulk_window(0, 100_000);
    let payload = big.records.len() as u64 * record_bytes;
    reset_counters();
    let snapshot = big.clone();
    let snapshot_bytes = bytes_allocated();
    assert_eq!(snapshot.records.len(), big.records.len());
    assert!(
        snapshot_bytes * 16 < payload,
        "cloning a {payload}-byte window allocated {snapshot_bytes} bytes — \
         the snapshot deep-copies records again"
    );
    drop(snapshot);

    // --- Claim 2: extraction allocates for candidates, not the horizon.
    let mut ce = ContinuousExtractor::new(ExtractorConfig::default(), 4);
    for index in 0..4 {
        let reports = ce.push_window(bulk_window(index, 30_000), &[]);
        assert!(reports.is_empty(), "quiet windows must not report");
    }
    let horizon_bytes = ce.resident_flows() as u64 * record_bytes;
    assert!(
        horizon_bytes > 4 << 20,
        "horizon too small ({horizon_bytes} bytes) to make the assertion meaningful"
    );

    let window = scan_window(4, 2_000);
    let alarm = Alarm::new(0, "kl", window.range);
    reset_counters();
    let reports = ce.push_window(window, &[EnsembleAlarm::solo(alarm)]);
    let extract_bytes = bytes_allocated();
    assert_eq!(reports.len(), 1, "the scan window must produce a report");
    assert!(
        extract_bytes < horizon_bytes / 2,
        "mining one alarmed window allocated {extract_bytes} bytes against a \
         {horizon_bytes}-byte retained horizon — the per-alarm horizon clone is back"
    );
}

fn main() {
    // `anomex_model` routes the `sync` facade (and the `watermark`
    // module built on it) onto the modelcheck shims; set iff the
    // `model` feature is on.
    println!("cargo::rustc-check-cfg=cfg(anomex_model)");
    if std::env::var_os("CARGO_FEATURE_MODEL").is_some() {
        println!("cargo:rustc-cfg=anomex_model");
    }
}

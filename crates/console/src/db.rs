//! The alarm database.
//!
//! "Our system reads from a database information about an alarm (e.g.,
//! the time interval and the affected traffic features) and thus can be
//! integrated with any anomaly detection system that provides these
//! data." The database is a JSON file of [`Alarm`] records — any
//! detector that can write JSON can feed the extractor.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use anomex_detect::alarm::Alarm;

/// A JSON-file-backed (or purely in-memory) alarm store.
#[derive(Debug, Default)]
pub struct AlarmDb {
    path: Option<PathBuf>,
    alarms: Vec<Alarm>,
}

impl AlarmDb {
    /// An unbacked, empty database.
    pub fn in_memory() -> AlarmDb {
        AlarmDb::default()
    }

    /// Open (or create) a database at `path`.
    ///
    /// # Errors
    /// I/O errors reading the file; `InvalidData` when the file exists
    /// but does not parse as an alarm list.
    pub fn open(path: impl AsRef<Path>) -> io::Result<AlarmDb> {
        let path = path.as_ref().to_path_buf();
        let alarms = match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(AlarmDb { path: Some(path), alarms })
    }

    /// Persist to the backing file (no-op for in-memory databases).
    ///
    /// # Errors
    /// I/O errors writing the file.
    pub fn save(&self) -> io::Result<()> {
        if let Some(path) = &self.path {
            let text = serde_json::to_string_pretty(&self.alarms)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            fs::write(path, text)?;
        }
        Ok(())
    }

    /// Insert an alarm, reassigning its id to stay unique, and return
    /// the assigned id.
    pub fn add(&mut self, mut alarm: Alarm) -> u64 {
        let id = self.alarms.iter().map(|a| a.id + 1).max().unwrap_or(0);
        alarm.id = id;
        self.alarms.push(alarm);
        id
    }

    /// Insert many alarms (detector output), returning assigned ids.
    pub fn add_all(&mut self, alarms: Vec<Alarm>) -> Vec<u64> {
        alarms.into_iter().map(|a| self.add(a)).collect()
    }

    /// All alarms, insertion order.
    pub fn all(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Look an alarm up by id.
    pub fn get(&self, id: u64) -> Option<&Alarm> {
        self.alarms.iter().find(|a| a.id == id)
    }

    /// Number of alarms.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// True when no alarms are stored.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::feature::FeatureItem;
    use anomex_flow::store::TimeRange;

    fn alarm() -> Alarm {
        Alarm::new(99, "kl", TimeRange::new(0, 300_000))
            .with_hints(vec![FeatureItem::dst_port(80)])
            .with_kind("port scan")
    }

    #[test]
    fn add_reassigns_sequential_ids() {
        let mut db = AlarmDb::in_memory();
        assert_eq!(db.add(alarm()), 0);
        assert_eq!(db.add(alarm()), 1);
        assert_eq!(db.get(1).unwrap().id, 1);
        assert!(db.get(99).is_none(), "original id must not survive");
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join(format!("anomex-db-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alarms.json");
        let _ = fs::remove_file(&path);

        let mut db = AlarmDb::open(&path).unwrap();
        assert!(db.is_empty());
        db.add(alarm());
        db.add(alarm());
        db.save().unwrap();

        let db2 = AlarmDb::open(&path).unwrap();
        assert_eq!(db2.len(), 2);
        assert_eq!(db2.get(0).unwrap().kind_hint.as_deref(), Some("port scan"));
        assert_eq!(db2.get(0).unwrap().hints, vec![FeatureItem::dst_port(80)]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_invalid_data() {
        let dir = std::env::temp_dir().join(format!("anomex-db-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "this is not json").unwrap();
        let err = AlarmDb::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_save_is_noop() {
        let mut db = AlarmDb::in_memory();
        db.add(alarm());
        db.save().unwrap();
    }
}

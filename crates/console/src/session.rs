//! The operator console.
//!
//! A scriptable, line-oriented replacement for the paper's GUI: "The
//! operator, through a GUI, can compute the frequent itemsets associated
//! with an alarm, investigate the flows of any returned itemset, and
//! tune the extraction parameters if needed." Every GUI affordance maps
//! to a command; the console reads from any `BufRead` and writes to any
//! `Write`, so the whole workflow is testable headlessly.

use std::io::{BufRead, Write};

use anomex_core::prelude::*;
use anomex_detect::alarm::Alarm;
use anomex_fim::Algorithm;
use anomex_flow::filter::Filter;
use anomex_flow::record::Protocol;
use anomex_flow::store::FlowStore;
use anomex_stream::metrics::{MetricValue, MetricsReport};

use crate::db::AlarmDb;

/// Console state: the store under investigation, the alarm DB, the
/// extractor configuration and the current selection.
pub struct Console {
    store: FlowStore,
    db: AlarmDb,
    config: ExtractorConfig,
    selected: Option<Alarm>,
    last: Option<Extraction>,
    metrics: Option<MetricsReport>,
    /// Support columns are multiplied by this in reports (set it to the
    /// sampling rate to show wire-scale estimates).
    pub report_scale: u64,
}

impl Console {
    /// Console over a flow store and an alarm database.
    pub fn new(store: FlowStore, db: AlarmDb) -> Console {
        Console {
            store,
            db,
            config: ExtractorConfig::default(),
            selected: None,
            last: None,
            metrics: None,
            report_scale: 1,
        }
    }

    /// Attach pipeline telemetry for the `metrics` command (a
    /// [`LiveSession`](crate::live::LiveSession) hands over its
    /// freshest report on [`into_console`]).
    ///
    /// [`into_console`]: crate::live::LiveSession::into_console
    pub fn set_metrics(&mut self, metrics: MetricsReport) {
        self.metrics = Some(metrics);
    }

    /// The active extractor configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// The last extraction result, if any.
    pub fn last_extraction(&self) -> Option<&Extraction> {
        self.last.as_ref()
    }

    /// Run the read-eval-print loop until EOF or `quit`.
    ///
    /// # Errors
    /// Propagates I/O errors from the output writer.
    pub fn run(&mut self, input: impl BufRead, mut out: impl Write) -> std::io::Result<()> {
        writeln!(out, "anomex console — 'help' lists commands")?;
        for line in input.lines() {
            let line = line?;
            write!(out, "> ")?;
            writeln!(out, "{line}")?;
            if !self.dispatch(line.trim(), &mut out)? {
                break;
            }
        }
        Ok(())
    }

    /// Execute one command; `Ok(false)` means quit.
    ///
    /// # Errors
    /// Propagates I/O errors from the output writer.
    pub fn dispatch(&mut self, line: &str, out: &mut impl Write) -> std::io::Result<bool> {
        let mut parts = line.split_whitespace();
        let Some(command) = parts.next() else {
            return Ok(true);
        };
        let args: Vec<&str> = parts.collect();
        match command {
            "help" => self.cmd_help(out)?,
            "alarms" => self.cmd_alarms(out)?,
            "detectors" => self.cmd_detectors(out)?,
            "alarm" => self.cmd_alarm(&args, out)?,
            "extract" => self.cmd_extract(out)?,
            "itemsets" => self.cmd_itemsets(out)?,
            "flows" => self.cmd_flows(&args, out)?,
            "classify" => self.cmd_classify(&args, out)?,
            "set" => self.cmd_set(&args, out)?,
            "show" => self.cmd_show(out)?,
            "metrics" => self.cmd_metrics(out)?,
            "health" => self.cmd_health(out)?,
            "filter" => self.cmd_filter(&args.join(" "), out)?,
            "quit" | "exit" => return Ok(false),
            other => writeln!(out, "unknown command '{other}' — try 'help'")?,
        }
        Ok(true)
    }

    fn cmd_help(&self, out: &mut impl Write) -> std::io::Result<()> {
        writeln!(
            out,
            "commands:\n  alarms                    list alarms\n  detectors                 alarms per detector (ensemble merges split by '+')\n  alarm <id>                select an alarm\n  extract                   mine itemsets for the selected alarm\n  itemsets                  show the last extraction table\n  flows <n> [limit]         drill into itemset n's raw flows\n  classify <n>              classify itemset n\n  set <param> <value>       tune: k, flow-floor, packet-floor,\n                            packet-support on|off, policy union|interval,\n                            algorithm apriori|fpgrowth|eclat, scale <n>\n  show                      show configuration\n  metrics                   pipeline telemetry from the live session\n  health                    supervision and degradation counters\n  filter <expr>             count flows matching an nfdump-style filter\n  quit                      leave"
        )
    }

    fn cmd_alarms(&self, out: &mut impl Write) -> std::io::Result<()> {
        if self.db.is_empty() {
            return writeln!(out, "no alarms in the database");
        }
        for alarm in self.db.all() {
            writeln!(out, "{}", alarm.describe())?;
        }
        Ok(())
    }

    fn cmd_detectors(&self, out: &mut impl Write) -> std::io::Result<()> {
        if self.db.is_empty() {
            return writeln!(out, "no alarms in the database");
        }
        // Ensemble-merged alarms carry "kl+entropy-pca"-style names;
        // credit each contributing detector.
        let mut counts: Vec<(&str, u64)> = Vec::new();
        for alarm in self.db.all() {
            for name in alarm.detector.split('+') {
                match counts.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((name, 1)),
                }
            }
        }
        for (name, count) in counts {
            writeln!(out, "{name:<16} {count} alarm(s)")?;
        }
        Ok(())
    }

    fn cmd_alarm(&mut self, args: &[&str], out: &mut impl Write) -> std::io::Result<()> {
        let Some(id) = args.first().and_then(|s| s.parse::<u64>().ok()) else {
            return writeln!(out, "usage: alarm <id>");
        };
        match self.db.get(id) {
            Some(alarm) => {
                writeln!(out, "selected: {}", alarm.describe())?;
                self.selected = Some(alarm.clone());
                self.last = None;
            }
            None => writeln!(out, "no alarm #{id}")?,
        }
        Ok(())
    }

    fn cmd_extract(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        let Some(alarm) = &self.selected else {
            return writeln!(out, "select an alarm first ('alarm <id>')");
        };
        let extraction = Extractor::new(self.config).extract(&self.store, alarm);
        write!(out, "{}", render_summary(&extraction))?;
        if extraction.is_empty() {
            writeln!(out, "no meaningful itemsets — stealthy anomaly or false-positive alarm?")?;
        } else {
            write!(out, "{}", render_table(&extraction, self.report_scale))?;
        }
        self.last = Some(extraction);
        Ok(())
    }

    fn cmd_itemsets(&self, out: &mut impl Write) -> std::io::Result<()> {
        match &self.last {
            Some(extraction) if !extraction.is_empty() => {
                write!(out, "{}", render_table(extraction, self.report_scale))
            }
            Some(_) => writeln!(out, "last extraction returned nothing"),
            None => writeln!(out, "nothing extracted yet ('extract')"),
        }
    }

    fn itemset_at(&self, args: &[&str]) -> Result<(&ExtractedItemset, usize), String> {
        let extraction = self.last.as_ref().ok_or("nothing extracted yet ('extract')")?;
        let index: usize =
            args.first().and_then(|s| s.parse().ok()).ok_or("usage: <command> <itemset-index>")?;
        let itemset = extraction
            .itemsets
            .get(index)
            .ok_or_else(|| format!("no itemset #{index} (have {})", extraction.itemsets.len()))?;
        Ok((itemset, index))
    }

    fn cmd_flows(&mut self, args: &[&str], out: &mut impl Write) -> std::io::Result<()> {
        let (itemset, _) = match self.itemset_at(args) {
            Ok(x) => x,
            Err(msg) => return writeln!(out, "{msg}"),
        };
        let Some(alarm) = &self.selected else {
            return writeln!(out, "no alarm selected");
        };
        let limit: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
        let flows = drill(&self.store, alarm, itemset);
        let summary = DrillSummary::of(&flows);
        writeln!(out, "{}", summary.describe())?;
        if looks_like_syn_flood(&summary) {
            writeln!(out, "note: flag mix says TCP SYN flood")?;
        }
        for f in flows.iter().take(limit) {
            writeln!(out, "  {f}")?;
        }
        if flows.len() > limit {
            writeln!(out, "  ... {} more", flows.len() - limit)?;
        }
        Ok(())
    }

    fn cmd_classify(&mut self, args: &[&str], out: &mut impl Write) -> std::io::Result<()> {
        let (itemset, index) = match self.itemset_at(args) {
            Ok(x) => x,
            Err(msg) => return writeln!(out, "{msg}"),
        };
        let Some(alarm) = &self.selected else {
            return writeln!(out, "no alarm selected");
        };
        let flows = drill(&self.store, alarm, itemset);
        let summary = DrillSummary::of(&flows);
        let proto = dominant_proto(&flows);
        let class = classify(itemset, &summary, proto);
        writeln!(out, "itemset #{index} [{}] -> {class}", itemset.pattern())
    }

    fn cmd_set(&mut self, args: &[&str], out: &mut impl Write) -> std::io::Result<()> {
        let usage =
            "usage: set k|flow-floor|packet-floor|packet-support|policy|algorithm|scale <value>";
        let (Some(param), Some(value)) = (args.first(), args.get(1)) else {
            return writeln!(out, "{usage}");
        };
        let ok = match (*param, *value) {
            ("k", v) => v.parse().map(|k| self.config.k = k).is_ok(),
            ("flow-floor", v) => v.parse().map(|f| self.config.flow_floor = f).is_ok(),
            ("packet-floor", v) => v.parse().map(|f| self.config.packet_floor = f).is_ok(),
            ("packet-support", "on") => {
                self.config.packet_support = true;
                true
            }
            ("packet-support", "off") => {
                self.config.packet_support = false;
                true
            }
            ("policy", "union") => {
                self.config.policy = CandidatePolicy::HintUnion;
                true
            }
            ("policy", "interval") => {
                self.config.policy = CandidatePolicy::WholeInterval;
                true
            }
            ("algorithm", "apriori") => {
                self.config.algorithm = Algorithm::Apriori;
                true
            }
            ("algorithm", "fpgrowth") => {
                self.config.algorithm = Algorithm::FpGrowth;
                true
            }
            ("algorithm", "eclat") => {
                self.config.algorithm = Algorithm::Eclat;
                true
            }
            ("scale", v) => v.parse().map(|s| self.report_scale = s).is_ok(),
            _ => false,
        };
        if ok {
            writeln!(out, "set {param} = {value}")
        } else {
            writeln!(out, "{usage}")
        }
    }

    fn cmd_show(&self, out: &mut impl Write) -> std::io::Result<()> {
        writeln!(
            out,
            "config: k={} flow-floor={} packet-floor={} packet-support={} policy={:?} algorithm={} scale={}",
            self.config.k,
            self.config.flow_floor,
            self.config.packet_floor,
            self.config.packet_support,
            self.config.policy,
            self.config.algorithm,
            self.report_scale
        )
    }

    fn cmd_metrics(&self, out: &mut impl Write) -> std::io::Result<()> {
        let Some(metrics) = &self.metrics else {
            return writeln!(out, "no pipeline telemetry attached (run a live session)");
        };
        writeln!(
            out,
            "pipeline telemetry #{} — {} window(s) merged",
            metrics.seq, metrics.windows
        )?;
        let mut stage = "";
        for entry in &metrics.snapshot.entries {
            if entry.stage != stage {
                stage = entry.stage;
                writeln!(out, "[{stage}]")?;
            }
            match &entry.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    writeln!(out, "  {:<28} {v} {}", entry.name, entry.unit)?;
                }
                MetricValue::Histogram(h) => {
                    let max = h.buckets.last().map_or(0, |b| b.le);
                    writeln!(
                        out,
                        "  {:<28} n={} mean={:.1} max<={} {}",
                        entry.name,
                        h.count,
                        h.mean(),
                        max,
                        entry.unit
                    )?;
                }
            }
        }
        Ok(())
    }

    fn cmd_health(&self, out: &mut impl Write) -> std::io::Result<()> {
        let Some(metrics) = &self.metrics else {
            return writeln!(out, "no pipeline telemetry attached (run a live session)");
        };
        // The fault/degraded stages carry the whole supervision story:
        // caught panics, restarts, failovers, sheds, and quarantines.
        let mut trouble = 0u64;
        let mut lines = Vec::new();
        for entry in &metrics.snapshot.entries {
            if entry.stage != "fault" && entry.stage != "degraded" {
                continue;
            }
            if let MetricValue::Counter(v) = &entry.value {
                trouble += v;
                if *v > 0 {
                    lines.push(format!("  {:<28} {v} {}", entry.name, entry.unit));
                }
            }
        }
        if trouble == 0 {
            writeln!(
                out,
                "pipeline healthy — no worker panics, restarts, sheds, or quarantines \
                 (telemetry #{})",
                metrics.seq
            )
        } else {
            writeln!(out, "pipeline DEGRADED (telemetry #{}):", metrics.seq)?;
            for line in lines {
                writeln!(out, "{line}")?;
            }
            Ok(())
        }
    }

    fn cmd_filter(&self, expr: &str, out: &mut impl Write) -> std::io::Result<()> {
        if expr.is_empty() {
            return writeln!(out, "usage: filter <nfdump-style expression>");
        }
        match Filter::parse(expr) {
            Ok(filter) => {
                let window = self
                    .selected
                    .as_ref()
                    .map(|a| a.window)
                    .unwrap_or_else(anomex_flow::store::TimeRange::all);
                let stats = self.store.query_stats(window, &filter);
                writeln!(
                    out,
                    "{} flows, {} packets, {} bytes match",
                    stats.flows, stats.packets, stats.bytes
                )
            }
            Err(e) => writeln!(out, "filter error: {e}"),
        }
    }
}

/// The most common protocol among `flows` (`TCP` for an empty slice).
fn dominant_proto(flows: &[anomex_flow::record::FlowRecord]) -> Protocol {
    let mut counts = std::collections::HashMap::new();
    for f in flows {
        *counts.entry(f.proto).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p.0)))
        .map(|(p, _)| p)
        .unwrap_or(Protocol::TCP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::feature::FeatureItem;
    use anomex_flow::record::{FlowRecord, TcpFlags};
    use anomex_flow::store::TimeRange;
    use std::io::Cursor;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// A store with a port scan and a detector alarm pointing at it.
    fn console() -> Console {
        let store = FlowStore::new(60_000);
        for p in 1..=500u32 {
            store.insert(
                FlowRecord::builder()
                    .time(p as u64 * 10, p as u64 * 10 + 1)
                    .src(ip("10.0.0.9"), 55_548)
                    .dst(ip("172.16.0.1"), p as u16)
                    .tcp_flags(TcpFlags::SYN)
                    .volume(1, 44)
                    .build(),
            );
        }
        for i in 0..60u32 {
            store.insert(
                FlowRecord::builder()
                    .time(i as u64 * 50, i as u64 * 50 + 20)
                    .src(Ipv4Addr::from(0x0A000100 + i), 2000 + i as u16)
                    .dst(ip("172.16.0.3"), 80)
                    .tcp_flags(TcpFlags::COMPLETE)
                    .volume(5, 3_000)
                    .build(),
            );
        }
        let mut db = AlarmDb::in_memory();
        db.add(
            Alarm::new(0, "entropy-pca", TimeRange::new(0, 60_000))
                .with_hints(vec![FeatureItem::src_ip(ip("10.0.0.9"))])
                .with_kind("port scan"),
        );
        Console::new(store, db)
    }

    fn run_script(console: &mut Console, script: &str) -> String {
        let mut out = Vec::new();
        console.run(Cursor::new(script.to_string()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn full_workflow_session() {
        let mut c = console();
        let out =
            run_script(&mut c, "alarms\nalarm 0\nextract\nitemsets\nflows 0 3\nclassify 0\nquit\n");
        assert!(out.contains("port scan"), "{out}");
        assert!(out.contains("selected: alarm #0"), "{out}");
        assert!(out.contains("srcIP"), "table header expected: {out}");
        assert!(out.contains("10.0.0.9"), "{out}");
        assert!(out.contains("500"), "scan support expected: {out}");
        assert!(out.contains("-> port scan"), "classification expected: {out}");
    }

    #[test]
    fn detectors_command_splits_ensemble_names() {
        let mut c = console();
        c.db.add(Alarm::new(0, "kl+entropy-pca", TimeRange::new(60_000, 120_000)));
        let out = run_script(&mut c, "detectors\nquit\n");
        assert!(out.contains("entropy-pca      2 alarm(s)"), "{out}");
        assert!(out.contains("kl               1 alarm(s)"), "{out}");
    }

    #[test]
    fn extract_without_selection_is_guarded() {
        let mut c = console();
        let out = run_script(&mut c, "extract\n");
        assert!(out.contains("select an alarm first"), "{out}");
    }

    #[test]
    fn metrics_without_telemetry_is_guarded() {
        let mut c = console();
        let out = run_script(&mut c, "metrics\n");
        assert!(out.contains("no pipeline telemetry attached"), "{out}");
    }

    #[test]
    fn unknown_command_mentions_help() {
        let mut c = console();
        let out = run_script(&mut c, "frobnicate\n");
        assert!(out.contains("unknown command 'frobnicate'"), "{out}");
    }

    #[test]
    fn set_and_show_parameters() {
        let mut c = console();
        let out =
            run_script(&mut c, "set k 5\nset packet-support off\nset policy interval\nshow\n");
        assert!(out.contains("set k = 5"), "{out}");
        assert!(out.contains("k=5"), "{out}");
        assert!(out.contains("packet-support=false"), "{out}");
        assert!(out.contains("WholeInterval"), "{out}");
        assert_eq!(c.config().k, 5);
    }

    #[test]
    fn set_rejects_nonsense() {
        let mut c = console();
        let out = run_script(&mut c, "set k banana\nset policy sideways\n");
        assert_eq!(out.matches("usage: set").count(), 2, "{out}");
    }

    #[test]
    fn filter_counts_flows() {
        let mut c = console();
        let out = run_script(&mut c, "filter src ip 10.0.0.9\n");
        assert!(out.contains("500 flows"), "{out}");
    }

    #[test]
    fn filter_reports_parse_errors() {
        let mut c = console();
        let out = run_script(&mut c, "filter this is gibberish\n");
        assert!(out.contains("filter error"), "{out}");
    }

    #[test]
    fn flows_before_extract_is_guarded() {
        let mut c = console();
        let out = run_script(&mut c, "alarm 0\nflows 0\n");
        assert!(out.contains("nothing extracted yet"), "{out}");
    }

    #[test]
    fn quit_stops_processing() {
        let mut c = console();
        let out = run_script(&mut c, "quit\nalarms\n");
        assert!(!out.contains("alarm #0"), "commands after quit ran: {out}");
    }

    #[test]
    fn report_scale_multiplies_supports() {
        let mut c = console();
        let out = run_script(&mut c, "alarm 0\nset scale 100\nextract\n");
        // 500 observed scan flows scaled by 100 -> 50.00K.
        assert!(out.contains("50.00K"), "{out}");
    }

    #[test]
    fn dominant_proto_prefers_majority() {
        let flows = vec![
            FlowRecord::builder().proto(Protocol::UDP).build(),
            FlowRecord::builder().proto(Protocol::UDP).build(),
            FlowRecord::builder().proto(Protocol::TCP).build(),
        ];
        assert_eq!(dominant_proto(&flows), Protocol::UDP);
        assert_eq!(dominant_proto(&[]), Protocol::TCP);
    }
}

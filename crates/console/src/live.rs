//! Live session source: the console end of the streaming pipeline.
//!
//! A [`LiveSession`] consumes [`StreamReport`]s from the pipeline's
//! subscriber channel, renders each one as it arrives (alarm line +
//! Table-1 itemset table), and files the alarms into an [`AlarmDb`] so
//! the operator can keep investigating interactively with the ordinary
//! [`Console`](crate::session::Console) afterwards.

use std::io::{self, Write};

use anomex_core::report::{render_summary, render_table};
use anomex_stream::metrics::MetricsReport;
use anomex_stream::report::{FaultNotice, StreamReport};
use crossbeam::channel::Receiver;

use crate::db::AlarmDb;

/// Accumulates streamed reports and the alarms behind them.
#[derive(Default)]
pub struct LiveSession {
    db: AlarmDb,
    reports: Vec<StreamReport>,
    reports_dropped: u64,
    /// Alarms per source detector, in first-seen order (pre-merge
    /// attribution: a window two detectors flag counts once for each).
    detector_alarms: Vec<(String, u64)>,
    /// The freshest pipeline telemetry, if any arrived.
    last_metrics: Option<MetricsReport>,
    /// Support columns are multiplied by this in rendered tables (set
    /// to the sampling rate for wire-scale estimates).
    pub report_scale: u64,
}

impl LiveSession {
    /// Empty session with an in-memory alarm database.
    pub fn new() -> LiveSession {
        LiveSession {
            db: AlarmDb::in_memory(),
            reports: Vec::new(),
            reports_dropped: 0,
            detector_alarms: Vec::new(),
            last_metrics: None,
            report_scale: 1,
        }
    }

    /// Render one report to `out` and file its alarm (fault notices are
    /// rendered as degradation lines instead — there is no alarm to
    /// file).
    ///
    /// # Errors
    /// Propagates I/O errors from the output writer.
    pub fn ingest(&mut self, report: StreamReport, out: &mut impl Write) -> io::Result<()> {
        if report.dropped_before() > self.reports_dropped {
            let gap = report.dropped_before() - self.reports_dropped;
            self.reports_dropped = report.dropped_before();
            writeln!(
                out,
                "live: {gap} report(s) dropped on the bounded channel (slow subscriber); \
                 {} dropped in total",
                self.reports_dropped
            )?;
        }
        if let Some(notice) = report.as_fault() {
            render_fault(notice, out)?;
            self.reports.push(report);
            return Ok(());
        }
        let alarm = report.alarm().expect("non-fault reports carry an alarm");
        let id = self.db.add(alarm.clone());
        writeln!(out, "live: {}", self.db.get(id).expect("alarm just added").describe())?;
        let sources = report.sources();
        for source in sources {
            match self.detector_alarms.iter_mut().find(|(name, _)| *name == source.detector) {
                Some((_, count)) => *count += 1,
                None => self.detector_alarms.push((source.detector.clone(), 1)),
            }
            // A lone source is the alarm itself — nothing to attribute.
            if sources.len() > 1 {
                writeln!(out, "live:   └ {}", source.describe())?;
            }
        }
        let extraction = report.extraction().expect("non-fault reports carry an extraction");
        write!(out, "{}", render_summary(extraction))?;
        if extraction.is_empty() {
            writeln!(out, "no meaningful itemsets — stealthy anomaly or false positive?")?;
        } else {
            write!(out, "{}", render_table(extraction, self.report_scale.max(1)))?;
        }
        self.reports.push(report);
        Ok(())
    }

    /// Absorb one pipeline telemetry emission: render the one-line
    /// health summary and keep the report as [`last_metrics`].
    ///
    /// The line always carries the live counters (windows, records,
    /// send failures, dropped reports); the event-time gauges appear
    /// only when the pipeline's timing layer is enabled.
    ///
    /// [`last_metrics`]: LiveSession::last_metrics
    ///
    /// # Errors
    /// Propagates I/O errors from the output writer.
    pub fn ingest_metrics(
        &mut self,
        report: MetricsReport,
        out: &mut impl Write,
    ) -> io::Result<()> {
        let mut line = format!(
            "live: telemetry #{} — {} window(s), {} record(s)",
            report.seq,
            report.windows,
            report.records()
        );
        if let Some(lag) = report.watermark_lag_event_ms() {
            line.push_str(&format!(", watermark lag {lag}ms"));
        }
        if let Some(skew) = report.frontier_skew_ms() {
            line.push_str(&format!(", frontier skew {skew}ms"));
        }
        if let Some(depth) = report.report_queue_depth() {
            line.push_str(&format!(", report queue {depth}"));
        }
        if report.send_failures() > 0 {
            line.push_str(&format!(", {} record(s) lost to dead shards", report.send_failures()));
        }
        if report.reports_dropped() > 0 {
            line.push_str(&format!(", {} report(s) dropped", report.reports_dropped()));
        }
        writeln!(out, "{line}")?;
        self.last_metrics = Some(report);
        Ok(())
    }

    /// Consume the channel until the pipeline hangs up; returns how
    /// many reports arrived.
    ///
    /// # Errors
    /// Propagates I/O errors from the output writer.
    pub fn drain(
        &mut self,
        reports: &Receiver<StreamReport>,
        out: &mut impl Write,
    ) -> io::Result<usize> {
        let mut n = 0;
        while let Ok(report) = reports.recv() {
            self.ingest(report, out)?;
            n += 1;
        }
        Ok(n)
    }

    /// [`drain`](LiveSession::drain), interleaving the pipeline's
    /// telemetry channel: queued [`MetricsReport`]s are absorbed (and
    /// rendered as one-line summaries) before each blocking report
    /// receive and once more after the pipeline hangs up, so the final
    /// emission — the complete run — is always captured.
    ///
    /// # Errors
    /// Propagates I/O errors from the output writer.
    pub fn drain_with_metrics(
        &mut self,
        reports: &Receiver<StreamReport>,
        metrics: &Receiver<MetricsReport>,
        out: &mut impl Write,
    ) -> io::Result<usize> {
        let mut n = 0;
        loop {
            while let Ok(report) = metrics.try_recv() {
                self.ingest_metrics(report, out)?;
            }
            let Ok(report) = reports.recv() else { break };
            self.ingest(report, out)?;
            n += 1;
        }
        while let Ok(report) = metrics.try_recv() {
            self.ingest_metrics(report, out)?;
        }
        Ok(n)
    }

    /// Every report received so far, in arrival order.
    pub fn reports(&self) -> &[StreamReport] {
        &self.reports
    }

    /// Reports the pipeline dropped on the bounded subscriber channel
    /// before the last ingested report (from
    /// [`StreamReport::dropped_before`]).
    pub fn reports_dropped(&self) -> u64 {
        self.reports_dropped
    }

    /// Alarms seen per source detector, in first-seen order — the
    /// per-detector attribution across every ingested report.
    pub fn detector_alarms(&self) -> &[(String, u64)] {
        &self.detector_alarms
    }

    /// The freshest pipeline telemetry absorbed so far.
    pub fn last_metrics(&self) -> Option<&MetricsReport> {
        self.last_metrics.as_ref()
    }

    /// Records the pipeline lost because a shard worker disconnected
    /// mid-run, per the freshest telemetry (0 before any arrived).
    pub fn send_failures(&self) -> u64 {
        self.last_metrics.as_ref().map_or(0, MetricsReport::send_failures)
    }

    /// The accumulated alarm database (ids as filed, in arrival order).
    pub fn alarms(&self) -> &AlarmDb {
        &self.db
    }

    /// Hand the accumulated alarms to an interactive console over
    /// `store` for post-hoc drill-down; the freshest telemetry rides
    /// along (the console's `metrics` command renders it).
    pub fn into_console(self, store: anomex_flow::store::FlowStore) -> crate::session::Console {
        let mut console = crate::session::Console::new(store, self.db);
        if let Some(metrics) = self.last_metrics {
            console.set_metrics(metrics);
        }
        console
    }
}

/// Render one in-band degradation notice as a `live:` line.
fn render_fault(notice: &FaultNotice, out: &mut impl Write) -> io::Result<()> {
    let scope = match notice.window {
        Some(window) => format!(" window {}..{}ms", window.from_ms, window.to_ms),
        None => String::new(),
    };
    let severity = if notice.terminal { "terminal fault" } else { "degraded" };
    writeln!(out, "live: {severity}{scope}: {}", notice.detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::kl::KlConfig;
    use anomex_flow::prelude::*;
    use anomex_stream::prelude::*;
    use std::net::Ipv4Addr;

    /// End to end: pipeline reports flow into a live session, then the
    /// alarms remain investigable through the ordinary console.
    #[test]
    fn live_session_renders_reports_and_feeds_the_console() {
        let span = TimeRange::new(0, 8 * 60_000);
        let config = StreamConfig {
            shards: 2,
            span: Some(span),
            detectors: DetectorRegistry::kl(KlConfig {
                interval_ms: 60_000,
                ..KlConfig::default()
            }),
            ..StreamConfig::default()
        };
        let (mut ingest, reports) = anomex_stream::pipeline::launch(config);
        let metrics = ingest.metrics_reports().expect("telemetry subscription");
        let mut wire = Vec::new();
        for t in 0..8u64 {
            for i in 0..150u32 {
                wire.push(
                    FlowRecord::builder()
                        .time(t * 60_000 + i as u64 * 350, t * 60_000 + i as u64 * 350 + 40)
                        .src(Ipv4Addr::from(0x0A00_0000 + (i % 30)), 1_024 + (i % 300) as u16)
                        .dst(Ipv4Addr::from(0xAC10_0000 + (i % 6)), 80)
                        .volume(2, 1_200)
                        .build(),
                );
            }
        }
        for p in 1..=1_000u32 {
            wire.push(
                FlowRecord::builder()
                    .time(6 * 60_000 + p as u64 % 60_000, 6 * 60_000 + p as u64 % 60_000 + 1)
                    .src("10.9.9.9".parse().unwrap(), 55_548)
                    .dst("172.16.0.7".parse().unwrap(), p as u16)
                    .volume(1, 44)
                    .build(),
            );
        }
        wire.sort_by_key(|f| f.start_ms);
        let store = FlowStore::from_records(60_000, wire.clone());
        ingest.push_batch(wire);
        let stats = ingest.finish();
        assert!(stats.reports >= 1);

        let mut session = LiveSession::new();
        let mut out = Vec::new();
        let n = session.drain_with_metrics(&reports, &metrics, &mut out).unwrap();
        assert_eq!(n as u64, stats.reports);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("live: alarm #0"), "{text}");
        assert!(text.contains("srcIP"), "itemset table expected: {text}");
        assert!(text.contains("10.9.9.9"), "{text}");
        // Telemetry interleaves with the reports; the final emission
        // carries the complete run.
        assert!(text.contains("live: telemetry #"), "{text}");
        assert!(text.contains("watermark lag"), "{text}");
        let last = session.last_metrics().expect("final telemetry captured");
        assert_eq!(last.windows, stats.windows);
        assert_eq!(last.records(), stats.ingested);
        assert_eq!(session.send_failures(), 0);

        // The same alarms (and telemetry) drive the interactive console
        // afterwards.
        let mut console = session.into_console(store);
        let mut console_out = Vec::new();
        console
            .run(
                std::io::Cursor::new("alarm 0\nextract\nmetrics\nhealth\nquit\n".to_string()),
                &mut console_out,
            )
            .unwrap();
        let console_text = String::from_utf8(console_out).unwrap();
        assert!(console_text.contains("selected: alarm #0"), "{console_text}");
        assert!(console_text.contains("10.9.9.9"), "{console_text}");
        assert!(console_text.contains("pipeline telemetry #"), "{console_text}");
        assert!(console_text.contains("ingest.records"), "{console_text}");
        assert!(console_text.contains("shard.apply_ns"), "{console_text}");
        assert!(console_text.contains("pipeline healthy"), "{console_text}");
    }

    #[test]
    fn dropped_reports_surface_as_a_gap_note() {
        let mut session = LiveSession::new();
        let make = |id: u64, dropped_before: u64| {
            let alarm = anomex_detect::alarm::Alarm::new(id, "kl", TimeRange::new(0, 60_000));
            StreamReport::Alarm(anomex_stream::report::AlarmReport {
                sources: vec![alarm.clone()],
                alarm,
                extraction: anomex_core::extract::Extractor::with_defaults()
                    .extract_from_candidates(&[]),
                window_flows: 0,
                dropped_before,
            })
        };
        let mut out = Vec::new();
        session.ingest(make(0, 0), &mut out).unwrap();
        session.ingest(make(1, 3), &mut out).unwrap();
        session.ingest(make(2, 3), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(session.reports_dropped(), 3);
        assert_eq!(text.matches("dropped on the bounded channel").count(), 1, "{text}");
        assert!(text.contains("3 report(s) dropped"), "{text}");
        assert_eq!(session.detector_alarms(), &[("kl".to_string(), 3)]);
    }

    #[test]
    fn empty_extraction_renders_a_note() {
        let mut session = LiveSession::new();
        let alarm = anomex_detect::alarm::Alarm::new(0, "kl", TimeRange::new(0, 60_000));
        let report = StreamReport::Alarm(anomex_stream::report::AlarmReport {
            sources: vec![alarm.clone()],
            alarm,
            extraction: anomex_core::extract::Extractor::with_defaults()
                .extract_from_candidates(&[]),
            window_flows: 0,
            dropped_before: 0,
        });
        let mut out = Vec::new();
        session.ingest(report, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no meaningful itemsets"), "{text}");
        assert_eq!(session.reports().len(), 1);
        assert_eq!(session.alarms().len(), 1);
    }

    #[test]
    fn fault_notices_render_without_filing_an_alarm() {
        let mut session = LiveSession::new();
        let mut out = Vec::new();
        session
            .ingest(
                StreamReport::Fault(anomex_stream::report::FaultNotice {
                    kind: anomex_stream::report::FaultKind::WindowQuarantined,
                    window: Some(TimeRange::new(60_000, 120_000)),
                    detail: "extraction panicked twice; window skipped".to_string(),
                    terminal: false,
                    dropped_before: 0,
                }),
                &mut out,
            )
            .unwrap();
        session
            .ingest(
                StreamReport::Fault(anomex_stream::report::FaultNotice {
                    kind: anomex_stream::report::FaultKind::ShardDead,
                    window: None,
                    detail: "shard worker(s) [1] died".to_string(),
                    terminal: true,
                    dropped_before: 2,
                }),
                &mut out,
            )
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("live: degraded window 60000..120000ms"), "{text}");
        assert!(text.contains("live: terminal fault: shard worker(s) [1] died"), "{text}");
        assert!(text.contains("2 report(s) dropped"), "{text}");
        // Faults are retained in arrival order but never filed as alarms.
        assert_eq!(session.reports().len(), 2);
        assert_eq!(session.alarms().len(), 0);
        assert!(session.detector_alarms().is_empty());
    }

    #[test]
    fn merged_report_renders_per_detector_attribution() {
        use anomex_detect::alarm::Alarm;
        let window = TimeRange::new(60_000, 120_000);
        let kl = Alarm::new(4, "kl", window).with_score(2.0, 0.5);
        let pca = Alarm::new(1, "entropy-pca", window).with_score(30.0, 3.0);
        let mut merged = Alarm::new(0, "kl+entropy-pca", window);
        merged.score = pca.score;
        merged.severity = pca.severity;
        let report = StreamReport::Alarm(anomex_stream::report::AlarmReport {
            alarm: merged,
            sources: vec![kl, pca],
            extraction: anomex_core::extract::Extractor::with_defaults()
                .extract_from_candidates(&[]),
            window_flows: 0,
            dropped_before: 0,
        });
        let mut session = LiveSession::new();
        let mut out = Vec::new();
        session.ingest(report, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("[kl+entropy-pca]"), "{text}");
        assert!(text.contains("└ alarm #4 [kl]"), "{text}");
        assert!(text.contains("└ alarm #1 [entropy-pca]"), "{text}");
        assert_eq!(
            session.detector_alarms(),
            &[("kl".to_string(), 1), ("entropy-pca".to_string(), 1)]
        );
    }
}

//! # anomex-console
//!
//! The operator-facing layer of the extraction system: a JSON alarm
//! database (so "any anomaly detection system" can feed alarms in), a
//! scriptable console covering every workflow of the paper's GUI —
//! list alarms, compute itemsets, investigate raw flows, tune parameters
//! — and a [`live`] session source consuming the streaming pipeline's
//! report channel.
//!
//! The console runs over any `BufRead`/`Write` pair, which keeps the
//! whole operator workflow headless and testable; see
//! `examples/operator_console.rs` for an interactive session.
//!
//! ## Example
//!
//! ```
//! use anomex_console::prelude::*;
//! use anomex_detect::prelude::*;
//! use anomex_flow::prelude::*;
//! use std::io::Cursor;
//!
//! let store = FlowStore::new(60_000);
//! store.insert(FlowRecord::builder().dst("172.16.0.1".parse().unwrap(), 80).build());
//! let mut db = AlarmDb::in_memory();
//! db.add(Alarm::new(0, "demo", TimeRange::all()));
//!
//! let mut console = Console::new(store, db);
//! let mut out = Vec::new();
//! console.run(Cursor::new("alarms\nquit\n".to_string()), &mut out).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("alarm #0"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod db;
pub mod live;
pub mod session;

/// One-stop imports.
pub mod prelude {
    pub use crate::db::AlarmDb;
    pub use crate::live::LiveSession;
    pub use crate::session::Console;
}

pub use prelude::*;

//! Lock-free pipeline telemetry for the anomex streaming pipeline.
//!
//! The crate is a small registry of **counters**, **gauges** and
//! **fixed-bucket histograms** plus a span-timing helper
//! ([`StageTimer`] / [`stage_timer!`]). Design constraints, in order:
//!
//! - **Atomic hot path, zero allocation on increment.** Every handle is
//!   an `Option<Arc<AtomicU64>>`-shaped cell; an update is one `Relaxed`
//!   RMW (or a single branch when the handle is a no-op). Registration
//!   (the only locking, the only allocation) happens once at pipeline
//!   launch, never per record.
//! - **Compiled to no-ops when the `obs` feature is off.** Gauges,
//!   histograms, timers and the snapshot shrink to ZSTs with the same
//!   API. [`Counter`] deliberately stays real in both modes: pipeline
//!   statistics (`StreamStats`) are views over registry counters, and a
//!   build flag must never silently zero operator-facing totals.
//! - **Runtime-cheap disable.** [`Registry::counters_only`] hands out
//!   no-op timing handles from a real registry, so one binary can
//!   measure instrumented vs uninstrumented (the perf gate) without a
//!   rebuild.
//! - **Deterministic snapshots.** [`Registry::snapshot`] orders metrics
//!   by name and serializes through the vendored `serde::Value` (an
//!   insertion-ordered object), so two runs performing the same metric
//!   operations render byte-identical JSON.

#![warn(missing_docs)]

use serde::{Serialize, Value};

/// What a metric measures and how it aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum (`add`/`inc`).
    Counter,
    /// Last-write-wins level (`set`).
    Gauge,
    /// Fixed power-of-two bucket distribution (`record`).
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name used in snapshots and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Static description of one metric: the unit of registration and the
/// row rendered into `METRICS.md`.
///
/// `name` may contain one `*` wildcard segment for families registered
/// per dynamic instance (e.g. `detect.*.push_ns`); concrete members are
/// registered via the `*_named` registry methods against the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Dot-separated metric name, e.g. `ingest.send_failures`.
    pub name: &'static str,
    /// Aggregation kind.
    pub kind: MetricKind,
    /// Unit of the recorded value, e.g. `records`, `ns`, `ms`.
    pub unit: &'static str,
    /// Pipeline stage the metric belongs to, e.g. `ingest`, `detect`.
    pub stage: &'static str,
    /// One-line description for the catalog.
    pub help: &'static str,
}

/// One bucket of a [`HistogramSummary`]: `count` observations with
/// value `<= le` (and above the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive upper bound of the bucket (a power of two, or
    /// `u64::MAX` for the overflow bucket).
    pub le: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Point-in-time histogram state inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<HistBucket>,
}

impl HistogramSummary {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (0 when empty): the smallest bucket bound `le` such that at
    /// least `ceil(q * count)` observations are `<= le`. Quantized to
    /// the power-of-two bucket grid, so it over-reports by at most one
    /// bucket width — safe for "p99 stays below X" assertions as long
    /// as X sits on or above a bucket bound.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= need {
                return bucket.le;
            }
        }
        self.buckets.last().map_or(0, |b| b.le)
    }
}

/// Value of one metric inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSummary),
}

impl MetricValue {
    /// The counter/gauge scalar, or the histogram observation count.
    pub fn scalar(&self) -> u64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.count,
        }
    }
}

/// One named metric inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Registered metric name.
    pub name: String,
    /// Aggregation kind.
    pub kind: MetricKind,
    /// Unit from the [`MetricDef`].
    pub unit: &'static str,
    /// Stage from the [`MetricDef`].
    pub stage: &'static str,
    /// Current value.
    pub value: MetricValue,
}

/// Point-in-time view of every registered metric, ordered by name.
///
/// Serialization is deterministic: identical metric operation sequences
/// produce byte-identical JSON regardless of registration order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Entries sorted ascending by `name`.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// Counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge level by name (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state by name (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Render to a deterministic `serde::Value` tree (objects keep the
    /// insertion order this method chooses: sorted metric names, fixed
    /// field order per entry).
    pub fn to_json(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_string(), Value::Str(e.name.clone())),
                    ("stage".to_string(), Value::Str(e.stage.to_string())),
                    ("kind".to_string(), Value::Str(e.kind.as_str().to_string())),
                    ("unit".to_string(), Value::Str(e.unit.to_string())),
                ];
                match &e.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        fields.push(("value".to_string(), Value::U64(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("count".to_string(), Value::U64(h.count)));
                        fields.push(("sum".to_string(), Value::U64(h.sum)));
                        let buckets = h
                            .buckets
                            .iter()
                            .map(|b| {
                                Value::Object(vec![
                                    ("le".to_string(), Value::U64(b.le)),
                                    ("count".to_string(), Value::U64(b.count)),
                                ])
                            })
                            .collect();
                        fields.push(("buckets".to_string(), Value::Array(buckets)));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![("metrics".to_string(), Value::Array(entries))])
    }
}

impl Serialize for MetricsSnapshot {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

/// Monotonic counter handle.
///
/// Real in **both** feature modes (see the crate docs): a disabled
/// handle ([`Counter::noop`] / `Default`) skips the store, an enabled
/// one is a single `Relaxed` `fetch_add`.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<std::sync::Arc<std::sync::atomic::AtomicU64>>);

impl Counter {
    /// A handle that drops every update and reads 0.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// A live counter not attached to any registry (used by the
    /// feature-off registry, and by components that keep authoritative
    /// totals independent of telemetry).
    pub fn standalone() -> Counter {
        Counter(Some(std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0))))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Relaxed: totals are independent monotonic sums; every
    /// read that must agree with other state happens after a stronger
    /// synchronization point (channel handoff or shutdown mutex).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Current total (0 for a no-op handle).
    #[inline]
    pub fn get(&self) -> u64 {
        match &self.0 {
            Some(cell) => cell.load(std::sync::atomic::Ordering::Relaxed),
            None => 0,
        }
    }

    /// Whether updates are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(feature = "obs")]
mod enabled {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    use super::{
        Counter, HistBucket, HistogramSummary, MetricDef, MetricEntry, MetricKind, MetricValue,
        MetricsSnapshot,
    };

    /// Number of power-of-two histogram buckets; bucket `i` holds
    /// values of bit width `i` (bucket 0 holds zero, bucket 63 also
    /// absorbs everything wider).
    const HIST_BUCKETS: usize = 64;

    #[derive(Debug)]
    pub(super) struct HistCore {
        buckets: [AtomicU64; HIST_BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
    }

    impl HistCore {
        fn new() -> HistCore {
            HistCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }
        }

        fn record(&self, value: u64) {
            let idx = (u64::BITS - value.leading_zeros()).min(HIST_BUCKETS as u32 - 1);
            self.buckets[idx as usize].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }

        fn summary(&self) -> HistogramSummary {
            let mut buckets = Vec::new();
            for (i, bucket) in self.buckets.iter().enumerate() {
                let count = bucket.load(Ordering::Relaxed);
                if count > 0 {
                    let le = if i >= HIST_BUCKETS - 1 { u64::MAX } else { (1u64 << i) - 1 };
                    buckets.push(HistBucket { le, count });
                }
            }
            HistogramSummary {
                count: self.count.load(Ordering::Relaxed),
                sum: self.sum.load(Ordering::Relaxed),
                buckets,
            }
        }
    }

    /// Last-write-wins gauge handle (no-op unless the registry has the
    /// timing layer enabled).
    #[derive(Debug, Clone, Default)]
    pub struct Gauge(pub(super) Option<Arc<AtomicU64>>);

    impl Gauge {
        /// A handle that drops every update.
        pub fn noop() -> Gauge {
            Gauge(None)
        }

        /// Store `v` (Relaxed; a gauge is an independent level signal).
        #[inline]
        pub fn set(&self, v: u64) {
            if let Some(cell) = &self.0 {
                cell.store(v, Ordering::Relaxed);
            }
        }

        /// Monotonic variant: keep the maximum of the stored and new value.
        #[inline]
        pub fn set_max(&self, v: u64) {
            if let Some(cell) = &self.0 {
                cell.fetch_max(v, Ordering::Relaxed);
            }
        }

        /// Current level (0 for a no-op handle).
        pub fn get(&self) -> u64 {
            match &self.0 {
                Some(cell) => cell.load(Ordering::Relaxed),
                None => 0,
            }
        }

        /// Whether updates are being recorded.
        pub fn is_enabled(&self) -> bool {
            self.0.is_some()
        }
    }

    /// Fixed-bucket histogram handle (no-op unless the registry has the
    /// timing layer enabled). Buckets are powers of two: recording is
    /// a `leading_zeros` plus three Relaxed `fetch_add`s, no allocation.
    #[derive(Debug, Clone, Default)]
    pub struct Histogram(pub(super) Option<Arc<HistCore>>);

    impl Histogram {
        /// A handle that drops every observation.
        pub fn noop() -> Histogram {
            Histogram(None)
        }

        /// Record one observation.
        #[inline]
        pub fn record(&self, value: u64) {
            if let Some(core) = &self.0 {
                core.record(value);
            }
        }

        /// Total observations so far.
        pub fn count(&self) -> u64 {
            match &self.0 {
                Some(core) => core.count.load(Ordering::Relaxed),
                None => 0,
            }
        }

        /// Sum of observations so far.
        pub fn sum(&self) -> u64 {
            match &self.0 {
                Some(core) => core.sum.load(Ordering::Relaxed),
                None => 0,
            }
        }

        /// Whether observations are being recorded (lets call sites
        /// skip computing expensive values for a no-op handle).
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.0.is_some()
        }
    }

    /// Times a span of work into a nanosecond [`Histogram`].
    ///
    /// A disabled timer never calls `Instant::now`, so wrapping a stage
    /// costs one branch when telemetry is off.
    #[derive(Debug, Clone, Default)]
    pub struct StageTimer {
        pub(super) hist: Histogram,
    }

    impl StageTimer {
        /// A timer that measures nothing.
        pub fn noop() -> StageTimer {
            StageTimer { hist: Histogram::noop() }
        }

        /// Start timing; the returned guard records elapsed nanoseconds
        /// into the histogram when dropped.
        #[inline]
        pub fn start(&self) -> StageGuard<'_> {
            StageGuard {
                hist: &self.hist,
                start: if self.hist.is_enabled() { Some(Instant::now()) } else { None },
            }
        }

        /// Run `f`, recording its wall time.
        #[inline]
        pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
            let _guard = self.start();
            f()
        }

        /// The histogram observations land in.
        pub fn histogram(&self) -> &Histogram {
            &self.hist
        }

        /// Whether spans are being recorded.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.hist.is_enabled()
        }
    }

    /// RAII guard from [`StageTimer::start`].
    #[derive(Debug)]
    pub struct StageGuard<'a> {
        hist: &'a Histogram,
        start: Option<Instant>,
    }

    impl Drop for StageGuard<'_> {
        fn drop(&mut self) {
            if let Some(start) = self.start {
                self.hist.record(start.elapsed().as_nanos() as u64);
            }
        }
    }

    #[derive(Debug)]
    enum Cell {
        Counter(Arc<AtomicU64>),
        Gauge(Arc<AtomicU64>),
        Histogram(Arc<HistCore>),
    }

    #[derive(Debug)]
    struct Entry {
        kind: MetricKind,
        unit: &'static str,
        stage: &'static str,
        cell: Cell,
    }

    #[derive(Debug)]
    struct Inner {
        timing: bool,
        metrics: Mutex<BTreeMap<String, Entry>>,
    }

    /// Shared metric registry. Cloning shares the underlying store;
    /// registration locks briefly, handle updates never do.
    #[derive(Debug, Clone)]
    pub struct Registry {
        inner: Arc<Inner>,
    }

    impl Default for Registry {
        fn default() -> Registry {
            Registry::new()
        }
    }

    impl Registry {
        /// A registry with the full timing layer enabled.
        pub fn new() -> Registry {
            Registry::with_timing(true)
        }

        /// A registry that records counters but hands out no-op gauges,
        /// histograms and timers — the runtime-disabled configuration
        /// used to measure instrumentation overhead in one binary.
        pub fn counters_only() -> Registry {
            Registry::with_timing(false)
        }

        fn with_timing(timing: bool) -> Registry {
            Registry { inner: Arc::new(Inner { timing, metrics: Mutex::new(BTreeMap::new()) }) }
        }

        /// Whether gauges/histograms/timers from this registry record.
        pub fn timing_enabled(&self) -> bool {
            self.inner.timing
        }

        fn register(&self, name: String, def: &MetricDef, make: impl FnOnce() -> Cell) -> Cell {
            let mut metrics = self.inner.metrics.lock().expect("metrics registry poisoned");
            let entry = metrics.entry(name).or_insert_with(|| Entry {
                kind: def.kind,
                unit: def.unit,
                stage: def.stage,
                cell: make(),
            });
            assert_eq!(
                entry.kind, def.kind,
                "metric registered twice with different kinds (def: {})",
                def.name
            );
            match &entry.cell {
                Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
                Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
                Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
            }
        }

        /// Register (or fetch) the counter described by `def`.
        pub fn counter(&self, def: &MetricDef) -> Counter {
            self.counter_named(def.name.to_string(), def)
        }

        /// Register (or fetch) a dynamically named member of the family
        /// described by `def` (e.g. a per-detector counter).
        pub fn counter_named(&self, name: String, def: &MetricDef) -> Counter {
            debug_assert_eq!(def.kind, MetricKind::Counter);
            match self.register(name, def, || Cell::Counter(Arc::new(AtomicU64::new(0)))) {
                Cell::Counter(c) => Counter(Some(c)),
                _ => unreachable!("kind checked by register"),
            }
        }

        /// Register (or fetch) the gauge described by `def`; no-op when
        /// the timing layer is disabled.
        pub fn gauge(&self, def: &MetricDef) -> Gauge {
            debug_assert_eq!(def.kind, MetricKind::Gauge);
            if !self.inner.timing {
                return Gauge::noop();
            }
            match self
                .register(def.name.to_string(), def, || Cell::Gauge(Arc::new(AtomicU64::new(0))))
            {
                Cell::Gauge(g) => Gauge(Some(g)),
                _ => unreachable!("kind checked by register"),
            }
        }

        /// Register (or fetch) the histogram described by `def`; no-op
        /// when the timing layer is disabled.
        pub fn histogram(&self, def: &MetricDef) -> Histogram {
            self.histogram_named(def.name.to_string(), def)
        }

        /// Register (or fetch) a dynamically named histogram member.
        pub fn histogram_named(&self, name: String, def: &MetricDef) -> Histogram {
            debug_assert_eq!(def.kind, MetricKind::Histogram);
            if !self.inner.timing {
                return Histogram::noop();
            }
            match self.register(name, def, || Cell::Histogram(Arc::new(HistCore::new()))) {
                Cell::Histogram(h) => Histogram(Some(h)),
                _ => unreachable!("kind checked by register"),
            }
        }

        /// A [`StageTimer`] over the histogram described by `def`.
        pub fn timer(&self, def: &MetricDef) -> StageTimer {
            StageTimer { hist: self.histogram(def) }
        }

        /// A [`StageTimer`] over a dynamically named histogram member.
        pub fn timer_named(&self, name: String, def: &MetricDef) -> StageTimer {
            StageTimer { hist: self.histogram_named(name, def) }
        }

        /// Deterministic point-in-time snapshot, sorted by metric name.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let metrics = self.inner.metrics.lock().expect("metrics registry poisoned");
            let entries = metrics
                .iter()
                .map(|(name, entry)| MetricEntry {
                    name: name.clone(),
                    kind: entry.kind,
                    unit: entry.unit,
                    stage: entry.stage,
                    value: match &entry.cell {
                        Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Cell::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                        Cell::Histogram(h) => MetricValue::Histogram(h.summary()),
                    },
                })
                .collect();
            MetricsSnapshot { entries }
        }
    }
}

#[cfg(feature = "obs")]
pub use enabled::{Gauge, Histogram, Registry, StageGuard, StageTimer};

#[cfg(not(feature = "obs"))]
mod disabled {
    use super::{Counter, MetricDef, MetricsSnapshot};

    /// No-op gauge (the `obs` feature is off).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Gauge;

    impl Gauge {
        /// A handle that drops every update.
        pub fn noop() -> Gauge {
            Gauge
        }

        /// Dropped.
        #[inline]
        pub fn set(&self, _v: u64) {}

        /// Dropped.
        #[inline]
        pub fn set_max(&self, _v: u64) {}

        /// Always 0.
        pub fn get(&self) -> u64 {
            0
        }

        /// Always false.
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// No-op histogram (the `obs` feature is off).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Histogram;

    impl Histogram {
        /// A handle that drops every observation.
        pub fn noop() -> Histogram {
            Histogram
        }

        /// Dropped.
        #[inline]
        pub fn record(&self, _value: u64) {}

        /// Always 0.
        pub fn count(&self) -> u64 {
            0
        }

        /// Always 0.
        pub fn sum(&self) -> u64 {
            0
        }

        /// Always false.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// No-op stage timer (the `obs` feature is off): never touches the
    /// clock.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StageTimer;

    impl StageTimer {
        /// A timer that measures nothing.
        pub fn noop() -> StageTimer {
            StageTimer
        }

        /// Returns an inert guard.
        #[inline]
        pub fn start(&self) -> StageGuard<'_> {
            StageGuard(std::marker::PhantomData)
        }

        /// Runs `f` untimed.
        #[inline]
        pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
            f()
        }

        /// The (inert) histogram.
        pub fn histogram(&self) -> &Histogram {
            &Histogram
        }

        /// Always false.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }
    }

    /// Inert guard from [`StageTimer::start`].
    #[derive(Debug)]
    pub struct StageGuard<'a>(pub(super) std::marker::PhantomData<&'a ()>);

    /// No-op registry (the `obs` feature is off). Counters handed out
    /// are real but standalone (never retained, never snapshotted);
    /// everything else is inert and [`Registry::snapshot`] is empty.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Registry;

    impl Registry {
        /// A registry recording nothing but live counters.
        pub fn new() -> Registry {
            Registry
        }

        /// Same as [`Registry::new`] in this configuration.
        pub fn counters_only() -> Registry {
            Registry
        }

        /// Always false.
        pub fn timing_enabled(&self) -> bool {
            false
        }

        /// A live standalone counter (reads stay correct; the registry
        /// does not deduplicate or retain it in this configuration).
        pub fn counter(&self, _def: &MetricDef) -> Counter {
            Counter::standalone()
        }

        /// A live standalone counter for a dynamic family member.
        pub fn counter_named(&self, _name: String, _def: &MetricDef) -> Counter {
            Counter::standalone()
        }

        /// Inert.
        pub fn gauge(&self, _def: &MetricDef) -> Gauge {
            Gauge
        }

        /// Inert.
        pub fn histogram(&self, _def: &MetricDef) -> Histogram {
            Histogram
        }

        /// Inert.
        pub fn histogram_named(&self, _name: String, _def: &MetricDef) -> Histogram {
            Histogram
        }

        /// Inert.
        pub fn timer(&self, _def: &MetricDef) -> StageTimer {
            StageTimer
        }

        /// Inert.
        pub fn timer_named(&self, _name: String, _def: &MetricDef) -> StageTimer {
            StageTimer
        }

        /// Always empty.
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }
    }
}

#[cfg(not(feature = "obs"))]
pub use disabled::{Gauge, Histogram, Registry, StageGuard, StageTimer};

/// Times the rest of the enclosing scope (or a single expression) into
/// a [`StageTimer`].
///
/// ```
/// use anomex_obs::{stage_timer, StageTimer};
///
/// let timer = StageTimer::noop();
/// // Statement form: times until the end of the enclosing block.
/// {
///     stage_timer!(timer);
///     // ... stage body ...
/// }
/// // Expression form: times just the expression, yielding its value.
/// let v = stage_timer!(timer, 2 + 2);
/// assert_eq!(v, 4);
/// ```
#[macro_export]
macro_rules! stage_timer {
    ($timer:expr) => {
        let _stage_guard = $timer.start();
    };
    ($timer:expr, $body:expr) => {{
        let _stage_guard = $timer.start();
        $body
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQS: MetricDef = MetricDef {
        name: "test.requests",
        kind: MetricKind::Counter,
        unit: "requests",
        stage: "test",
        help: "requests seen",
    };
    const DEPTH: MetricDef = MetricDef {
        name: "test.depth",
        kind: MetricKind::Gauge,
        unit: "items",
        stage: "test",
        help: "queue depth",
    };
    const LAT: MetricDef = MetricDef {
        name: "test.latency_ns",
        kind: MetricKind::Histogram,
        unit: "ns",
        stage: "test",
        help: "span latency",
    };

    #[test]
    fn counter_is_live_in_every_configuration() {
        let registry = Registry::new();
        let c = registry.counter(&REQS);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(Counter::noop().get(), 0);
        Counter::noop().add(7); // dropped, not a panic
    }

    #[cfg(feature = "obs")]
    #[test]
    fn registered_handles_share_storage() {
        let registry = Registry::new();
        let a = registry.counter(&REQS);
        let b = registry.counter(&REQS);
        a.add(5);
        assert_eq!(b.get(), 5);
        let g1 = registry.gauge(&DEPTH);
        let g2 = registry.gauge(&DEPTH);
        g1.set(9);
        assert_eq!(g2.get(), 9);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_buckets_by_bit_width() {
        let registry = Registry::new();
        let h = registry.histogram(&LAT);
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(1000);
        h.record(u64::MAX);
        let snap = registry.snapshot();
        let summary = snap.histogram("test.latency_ns").expect("histogram registered");
        assert_eq!(summary.count, 5);
        // The sum cell wraps on overflow (atomic fetch_add semantics).
        assert_eq!(summary.sum, 1002u64.wrapping_add(u64::MAX));
        // 0 → le 0 bucket; 1 → le 1; 1000 (bit width 10) → le 1023;
        // u64::MAX → overflow bucket.
        let les: Vec<u64> = summary.buckets.iter().map(|b| b.le).collect();
        assert_eq!(les, vec![0, 1, 1023, u64::MAX]);
        let counts: Vec<u64> = summary.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
    }

    #[test]
    fn quantile_bound_walks_cumulative_buckets() {
        let summary = HistogramSummary {
            count: 100,
            sum: 0,
            buckets: vec![
                HistBucket { le: 0, count: 90 },
                HistBucket { le: 1023, count: 9 },
                HistBucket { le: u64::MAX, count: 1 },
            ],
        };
        assert_eq!(summary.quantile_bound(0.5), 0);
        assert_eq!(summary.quantile_bound(0.9), 0);
        assert_eq!(summary.quantile_bound(0.99), 1023);
        assert_eq!(summary.quantile_bound(1.0), u64::MAX);
        assert_eq!(HistogramSummary::default().quantile_bound(0.99), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stage_timer_records_into_its_histogram() {
        let registry = Registry::new();
        let timer = registry.timer(&LAT);
        timer.time(|| std::hint::black_box(1 + 1));
        {
            stage_timer!(timer);
            std::hint::black_box(2 + 2);
        }
        let out = stage_timer!(timer, 3 + 3);
        assert_eq!(out, 6);
        assert_eq!(timer.histogram().count(), 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counters_only_registry_disables_timing_but_not_counters() {
        let registry = Registry::counters_only();
        assert!(!registry.timing_enabled());
        let c = registry.counter(&REQS);
        c.add(3);
        let g = registry.gauge(&DEPTH);
        g.set(10);
        let t = registry.timer(&LAT);
        assert!(!t.is_enabled());
        t.time(|| ());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.requests"), 3);
        // Disabled timing handles are not registered at all, so the
        // snapshot stays free of dead zero entries.
        assert_eq!(snap.get("test.depth"), None);
        assert_eq!(snap.get("test.latency_ns"), None);
    }

    /// Two registries fed the same operation sequence — registered in
    /// *different orders* — must render byte-identical JSON.
    #[test]
    fn snapshot_json_is_deterministic() {
        let drive = |reverse: bool| {
            let registry = Registry::new();
            if reverse {
                let t = registry.timer(&LAT);
                let g = registry.gauge(&DEPTH);
                let c = registry.counter(&REQS);
                c.add(12);
                g.set(4);
                t.histogram().record(800);
                t.histogram().record(3);
            } else {
                let c = registry.counter(&REQS);
                let g = registry.gauge(&DEPTH);
                let t = registry.timer(&LAT);
                c.add(12);
                g.set(4);
                t.histogram().record(3);
                t.histogram().record(800);
            }
            serde_json::to_string_pretty(&registry.snapshot()).expect("snapshot serializes")
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn noop_handles_cost_nothing_and_read_zero() {
        let g = Gauge::noop();
        g.set(5);
        g.set_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(1);
        assert_eq!((h.count(), h.sum()), (0, 0));
        let t = StageTimer::noop();
        assert_eq!(t.time(|| 7), 7);
        assert!(!t.is_enabled());
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_registry_snapshot_is_empty_but_counters_work() {
        let registry = Registry::new();
        let c = registry.counter(&REQS);
        c.add(2);
        assert_eq!(c.get(), 2);
        registry.gauge(&DEPTH).set(5);
        registry.histogram(&LAT).record(10);
        assert_eq!(registry.snapshot(), MetricsSnapshot::default());
        assert_eq!(serde_json::to_string(&registry.snapshot()).unwrap(), "{\"metrics\":[]}");
    }
}

//! Histogram-based anomaly detection with the Kullback-Leibler distance —
//! the detector of Kind, Stoecklin & Dimitropoulos (IEEE TNSM 2009) that
//! the paper's SWITCH evaluation used ("a histogram-based anomaly
//! detector [3] using the Kullback-Leibler (KL) distance").
//!
//! Per feature and per interval, flow counts are hashed into a fixed
//! number of histogram bins. The current interval's histogram is compared
//! to a baseline averaged over a sliding window of preceding intervals;
//! the KL distance time series gets an adaptive threshold
//! (mean + `sigma` · std over the training window). On alarm, the bins
//! with the largest positive KL contribution are traced back to the
//! concrete feature values inside them — the alarm's meta-data.

use anomex_flow::feature::{Feature, FeatureItem, FeatureValue};
use anomex_flow::record::FlowRecord;
use anomex_flow::store::TimeRange;

use crate::alarm::Alarm;
use crate::detector::Detector;
use crate::interval::{IntervalSeries, IntervalStat, ValueDist};
use crate::threshold::{ThresholdMode, ThresholdState};

/// KL detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlConfig {
    /// Detection interval width in milliseconds (paper setting: 5 min).
    pub interval_ms: u64,
    /// log2 of the histogram bin count (7 → 128 bins, the TNSM range).
    pub bins_log2: u8,
    /// Sliding baseline window, in intervals.
    pub window: usize,
    /// Minimum intervals before detection can fire.
    pub min_training: usize,
    /// Threshold width: `mean + sigma * std` of trailing KL values.
    pub sigma: f64,
    /// Absolute KL floor (bits) below which no alarm fires, guarding the
    /// first intervals where the std estimate is still unstable.
    pub floor: f64,
    /// Meta-data size cap: values reported per flagged feature.
    pub hints_per_feature: usize,
    /// How the adaptive threshold keeps its score history: Welford
    /// running moments (O(1) memory, the default) or the exact full
    /// history (bit-identical with the seed detector's arithmetic).
    pub threshold: ThresholdMode,
}

impl Default for KlConfig {
    fn default() -> Self {
        KlConfig {
            interval_ms: 5 * 60 * 1000,
            bins_log2: 7,
            window: 6,
            min_training: 3,
            sigma: 3.0,
            floor: 0.05,
            hints_per_feature: 3,
            threshold: ThresholdMode::default(),
        }
    }
}

/// The histogram/KL detector.
#[derive(Debug, Clone)]
pub struct KlDetector {
    config: KlConfig,
    next_id: u64,
}

/// Per-feature KL measurement inside a detection result.
#[derive(Debug, Clone, PartialEq)]
pub struct KlScore {
    /// Which feature.
    pub feature: Feature,
    /// KL distance of the current interval vs. its baseline (bits).
    pub kl: f64,
    /// The adaptive threshold that applied.
    pub threshold: f64,
}

impl KlDetector {
    /// Detector with the given configuration.
    pub fn new(config: KlConfig) -> KlDetector {
        assert!(config.bins_log2 >= 2 && config.bins_log2 <= 16, "bins_log2 out of range");
        assert!(config.window >= 1, "baseline window must be >= 1");
        KlDetector { config, next_id: 0 }
    }

    /// Detector with default (paper-like) settings.
    pub fn with_defaults() -> KlDetector {
        KlDetector::new(KlConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &KlConfig {
        &self.config
    }

    /// Run detection over `flows` within `span`.
    ///
    /// Returns one alarm per flagged interval, meta-data merged across
    /// flagged features. Intervals before `min_training` never alarm.
    pub fn detect(&mut self, flows: &[FlowRecord], span: TimeRange) -> Vec<Alarm> {
        let series = IntervalSeries::cut(flows, span, self.config.interval_ms);
        self.detect_series(&series)
    }

    /// Run detection over a pre-cut series (shared with benchmarks).
    ///
    /// Equivalent to feeding every interval through [`KlOnline::push`];
    /// this delegation is what guarantees the streaming pipeline and
    /// the batch pipeline agree alarm-for-alarm.
    pub fn detect_series(&mut self, series: &IntervalSeries) -> Vec<Alarm> {
        let mut online = KlOnline::with_start_id(self.config, self.next_id);
        let alarms =
            series.intervals.iter().filter_map(|stat| online.push(stat)).collect::<Vec<_>>();
        self.next_id = online.next_id();
        alarms
    }
}

/// Incremental KL detection state: one interval in, at most one alarm
/// out, no re-scan of history.
///
/// Keeps the last `window` interval histograms (the sliding baseline)
/// plus a [`ThresholdState`] per feature for the adaptive threshold. In
/// the default [`ThresholdMode::Welford`] the whole state is a few KiB
/// per detector regardless of how long the stream runs;
/// [`ThresholdMode::Exact`] instead retains every un-alarmed KL score
/// to stay bit-identical with the seed detector's two-pass statistics.
#[derive(Debug, Clone)]
pub struct KlOnline {
    config: KlConfig,
    bins: usize,
    /// Histograms of up to `config.window` preceding intervals.
    recent: std::collections::VecDeque<[Vec<f64>; 4]>,
    /// Adaptive-threshold state over trailing un-alarmed KL values, per
    /// feature.
    history: [ThresholdState; 4],
    /// Intervals consumed so far.
    t: usize,
    next_id: u64,
}

impl KlOnline {
    /// Fresh online state with the given configuration.
    pub fn new(config: KlConfig) -> KlOnline {
        KlOnline::with_start_id(config, 0)
    }

    /// Fresh online state whose first alarm takes id `next_id`.
    pub fn with_start_id(config: KlConfig, next_id: u64) -> KlOnline {
        assert!(config.bins_log2 >= 2 && config.bins_log2 <= 16, "bins_log2 out of range");
        assert!(config.window >= 1, "baseline window must be >= 1");
        KlOnline {
            config,
            bins: 1usize << config.bins_log2,
            recent: std::collections::VecDeque::with_capacity(config.window + 1),
            history: std::array::from_fn(|_| ThresholdState::new(config.threshold)),
            t: 0,
            next_id,
        }
    }

    /// The id the next alarm will take.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Number of intervals consumed.
    pub fn intervals_seen(&self) -> usize {
        self.t
    }

    /// `f64`s of threshold history physically retained across all four
    /// features — constant (12) in Welford mode, growing per interval
    /// in Exact mode. Exposed so boundedness is testable.
    pub fn retained_threshold_samples(&self) -> usize {
        self.history.iter().map(ThresholdState::retained).sum()
    }

    /// Feed the next closed interval; returns an alarm if it deviates.
    ///
    /// Intervals must arrive in time order; gaps must be fed as empty
    /// [`IntervalStat`]s (exactly what [`IntervalSeries::cut`] produces
    /// for quiet intervals), or the adaptive threshold sees a different
    /// history than the batch detector would.
    pub fn push(&mut self, stat: &IntervalStat) -> Option<Alarm> {
        let hist: [Vec<f64>; 4] = [
            histogram(&stat.dists[0], self.bins),
            histogram(&stat.dists[1], self.bins),
            histogram(&stat.dists[2], self.bins),
            histogram(&stat.dists[3], self.bins),
        ];
        let baselines: [Vec<f64>; 4] = std::array::from_fn(|f| self.baseline(f));

        let result = if self.t < self.config.min_training {
            // Warm-up: record KL against whatever baseline exists so the
            // threshold has history, but never alarm.
            if self.t > 0 {
                for ((history, h), b) in self.history.iter_mut().zip(&hist).zip(&baselines) {
                    history.push(kl_divergence(h, b));
                }
            }
            None
        } else {
            let mut flagged: Vec<KlScore> = Vec::new();
            let mut kls = [0.0f64; 4];
            for (f, kl_slot) in kls.iter_mut().enumerate() {
                let kl = kl_divergence(&hist[f], &baselines[f]);
                *kl_slot = kl;
                let threshold = self.history[f].threshold(self.config.sigma, self.config.floor);
                if kl > threshold {
                    flagged.push(KlScore { feature: Feature::MINING[f], kl, threshold });
                }
            }

            if flagged.is_empty() {
                for (history, &kl) in self.history.iter_mut().zip(&kls) {
                    history.push(kl);
                }
                None
            } else {
                // Meta-data: top contributing values of every flagged
                // feature. Alarmed intervals do not pollute the threshold
                // history (shield the baseline from contamination).
                let mut hints = Vec::new();
                for score in &flagged {
                    let f = Feature::MINING.iter().position(|&x| x == score.feature).unwrap();
                    hints.extend(top_deviating_values(
                        &stat.dists[f],
                        &hist[f],
                        &baselines[f],
                        score.feature,
                        self.config.hints_per_feature,
                    ));
                }
                let worst = flagged
                    .iter()
                    .cloned()
                    .max_by(|a, b| (a.kl / a.threshold).partial_cmp(&(b.kl / b.threshold)).unwrap())
                    .expect("flagged is non-empty");
                let alarm = Alarm::new(self.next_id, "kl", stat.range)
                    .with_hints(hints)
                    .with_kind(guess_kind(&flagged))
                    .with_score(worst.kl, worst.threshold);
                self.next_id += 1;
                Some(alarm)
            }
        };

        self.recent.push_back(hist);
        if self.recent.len() > self.config.window {
            self.recent.pop_front();
        }
        self.t += 1;
        result
    }

    /// Average histogram of the retained preceding intervals.
    fn baseline(&self, feature: usize) -> Vec<f64> {
        let mut avg = vec![0.0f64; self.bins];
        let n = self.recent.len();
        for h in &self.recent {
            for (a, &x) in avg.iter_mut().zip(&h[feature]) {
                *a += x;
            }
        }
        if n > 0 {
            for a in &mut avg {
                *a /= n as f64;
            }
        }
        avg
    }
}

impl Detector for KlOnline {
    fn name(&self) -> &str {
        "kl"
    }

    fn interval_ms(&self) -> u64 {
        self.config.interval_ms
    }

    fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
        KlOnline::push(self, stat).into_iter().collect()
    }
}

/// Multiply-shift hash of a feature value into `bins` (power of two).
#[inline]
fn bin_of(value: u32, bins: usize) -> usize {
    let h = value.wrapping_mul(0x9E37_79B1);
    (h >> (32 - bins.trailing_zeros())) as usize
}

/// Normalized histogram of a value distribution.
fn histogram(dist: &ValueDist, bins: usize) -> Vec<f64> {
    let mut h = vec![0.0f64; bins];
    for (value, count) in dist.iter() {
        h[bin_of(value, bins)] += count as f64;
    }
    let total: f64 = h.iter().sum();
    if total > 0.0 {
        for x in &mut h {
            *x /= total;
        }
    }
    h
}

/// `KL(p || q)` in bits, with the baseline mixed toward uniform so empty
/// baseline bins cannot produce infinities.
fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    const LAMBDA: f64 = 1e-3;
    let uniform = 1.0 / p.len() as f64;
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            let qi = (1.0 - LAMBDA) * qi + LAMBDA * uniform;
            kl += pi * (pi / qi).log2();
        }
    }
    kl.max(0.0)
}

/// Values of the current interval that land in the bins with the largest
/// positive KL contribution.
fn top_deviating_values(
    dist: &ValueDist,
    current: &[f64],
    baseline: &[f64],
    feature: Feature,
    max: usize,
) -> Vec<FeatureItem> {
    let bins = current.len();
    let uniform = 1.0 / bins as f64;
    // Score each bin by its contribution to the divergence.
    let mut contributions: Vec<(usize, f64)> = (0..bins)
        .filter_map(|b| {
            let p = current[b];
            if p <= 0.0 {
                return None;
            }
            let q = (1.0 - 1e-3) * baseline[b] + 1e-3 * uniform;
            let c = p * (p / q).log2();
            (c > 0.0).then_some((b, c))
        })
        .collect();
    contributions.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    contributions.truncate(max);

    let flagged: Vec<usize> = contributions.iter().map(|&(b, _)| b).collect();
    // Heaviest concrete values inside the flagged bins.
    let mut candidates: Vec<(u32, u64)> =
        dist.iter().filter(|&(v, _)| flagged.contains(&bin_of(v, bins))).collect();
    candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    candidates.truncate(max);
    candidates
        .into_iter()
        .filter_map(|(raw, _)| {
            let value = FeatureValue::from_raw(feature, raw)?;
            FeatureItem::checked(feature, value)
        })
        .collect()
}

/// Crude label guess from which features deviated.
fn guess_kind(flagged: &[KlScore]) -> &'static str {
    let has = |f: Feature| flagged.iter().any(|s| s.feature == f);
    if has(Feature::DstPort) && has(Feature::SrcIp) && !has(Feature::DstIp) {
        "port scan"
    } else if has(Feature::DstIp) && !has(Feature::DstPort) {
        "network scan"
    } else if has(Feature::SrcIp) && has(Feature::DstIp) {
        "flood"
    } else {
        "distribution change"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::record::Protocol;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Steady background plus (optionally) a port scan in the final interval.
    fn trace(intervals: usize, width: u64, scan_in_last: bool) -> (Vec<FlowRecord>, TimeRange) {
        let mut flows = Vec::new();
        let span = TimeRange::new(0, intervals as u64 * width);
        for t in 0..intervals {
            let base = t as u64 * width;
            // Deterministic benign mix: 200 flows over a handful of services.
            for i in 0..200u32 {
                flows.push(
                    FlowRecord::builder()
                        .time(base + (i as u64 * 91) % width, base + (i as u64 * 91) % width + 50)
                        .src(Ipv4Addr::from(0x0A00_0000 + (i % 40)), 1024 + (i % 500) as u16)
                        .dst(
                            Ipv4Addr::from(0xAC10_0000 + (i % 7)),
                            if i % 3 == 0 { 443 } else { 80 },
                        )
                        .proto(Protocol::TCP)
                        .volume(3, 1800)
                        .build(),
                );
            }
            if scan_in_last && t == intervals - 1 {
                for p in 1..=1_500u32 {
                    flows.push(
                        FlowRecord::builder()
                            .time(base + (p as u64 % width), base + (p as u64 % width) + 1)
                            .src(ip("10.66.66.66"), 55_548)
                            .dst(ip("172.16.0.99"), p as u16)
                            .proto(Protocol::TCP)
                            .volume(1, 44)
                            .build(),
                    );
                }
            }
        }
        (flows, span)
    }

    #[test]
    fn quiet_trace_raises_no_alarm() {
        let (flows, span) = trace(8, 60_000, false);
        let mut det = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
        assert!(det.detect(&flows, span).is_empty());
    }

    #[test]
    fn port_scan_raises_alarm_with_scanner_in_hints() {
        let (flows, span) = trace(8, 60_000, true);
        let mut det = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
        let alarms = det.detect(&flows, span);
        assert_eq!(alarms.len(), 1, "expected exactly one alarmed interval");
        let alarm = &alarms[0];
        assert_eq!(alarm.window.from_ms, 7 * 60_000);
        assert!(
            alarm.hints.iter().any(|h| *h == FeatureItem::src_ip(ip("10.66.66.66"))),
            "scanner missing from meta-data: {:?}",
            alarm.hints
        );
        assert!(alarm.score > 0.0);
    }

    #[test]
    fn no_alarm_during_training() {
        // Scan in interval 1, inside min_training -> silent by design.
        let (mut flows, span) = trace(3, 60_000, false);
        for p in 1..=1_000u32 {
            flows.push(
                FlowRecord::builder()
                    .time(60_000 + p as u64, 60_001 + p as u64)
                    .src(ip("10.66.66.66"), 55_548)
                    .dst(ip("172.16.0.99"), p as u16)
                    .volume(1, 44)
                    .build(),
            );
        }
        let mut det = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
        assert!(det.detect(&flows, span).is_empty());
    }

    #[test]
    fn alarm_ids_increment_across_calls() {
        let (flows, span) = trace(8, 60_000, true);
        let mut det = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
        let a = det.detect(&flows, span);
        let b = det.detect(&flows, span);
        assert_eq!(a[0].id + 1, b[0].id);
    }

    #[test]
    fn kl_near_zero_for_identical_distributions() {
        // Not exactly zero: the baseline is mixed toward uniform by
        // lambda = 1e-3, which introduces a bias of order lambda bits.
        let p = vec![0.5, 0.25, 0.25, 0.0];
        assert!(kl_divergence(&p, &p) < 1e-2);
    }

    #[test]
    fn kl_positive_for_shifted_mass() {
        let p = vec![1.0, 0.0, 0.0, 0.0];
        let q = vec![0.25, 0.25, 0.25, 0.25];
        assert!(kl_divergence(&p, &q) > 1.5, "{}", kl_divergence(&p, &q));
    }

    #[test]
    fn kl_finite_against_empty_baseline() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 0.0];
        let kl = kl_divergence(&p, &q);
        assert!(kl.is_finite() && kl > 0.0);
    }

    #[test]
    fn welford_mode_keeps_threshold_state_constant() {
        let config = KlConfig { interval_ms: 60_000, ..KlConfig::default() };
        assert_eq!(config.threshold, ThresholdMode::Welford, "Welford is the default");
        let mut online = KlOnline::new(config);
        let (flows, span) = trace(16, 60_000, false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let mut sizes = Vec::new();
        for stat in &series.intervals {
            online.push(stat);
            sizes.push(online.retained_threshold_samples());
        }
        assert!(sizes.iter().all(|&s| s == 12), "O(1) threshold state violated: {sizes:?}");
    }

    #[test]
    fn exact_mode_retains_full_history() {
        let config = KlConfig {
            interval_ms: 60_000,
            threshold: ThresholdMode::Exact,
            ..KlConfig::default()
        };
        let mut online = KlOnline::new(config);
        let (flows, span) = trace(8, 60_000, false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        for stat in &series.intervals {
            online.push(stat);
        }
        // 7 un-alarmed post-warmup intervals recorded across 4 features
        // (interval 0 has no baseline and records nothing).
        assert_eq!(online.retained_threshold_samples(), 7 * 4);
    }

    #[test]
    fn exact_and_welford_agree_on_clear_signal() {
        let (flows, span) = trace(8, 60_000, true);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let mut alarms_by_mode = Vec::new();
        for mode in [ThresholdMode::Exact, ThresholdMode::Welford] {
            let config = KlConfig { interval_ms: 60_000, threshold: mode, ..KlConfig::default() };
            let mut online = KlOnline::new(config);
            let alarms: Vec<Alarm> =
                series.intervals.iter().filter_map(|stat| online.push(stat)).collect();
            alarms_by_mode.push(alarms);
        }
        assert_eq!(alarms_by_mode[0].len(), 1);
        assert_eq!(alarms_by_mode[0][0].window, alarms_by_mode[1][0].window);
        let (a, b) = (&alarms_by_mode[0][0], &alarms_by_mode[1][0]);
        assert!((a.score - b.score).abs() < 1e-9, "{} vs {}", a.score, b.score);
    }

    #[test]
    fn histogram_is_normalized() {
        let mut d = ValueDist::new();
        d.add(1, 10);
        d.add(999, 30);
        let h = histogram(&d, 64);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_of_stays_in_range() {
        for bins_log2 in [2u8, 7, 10] {
            let bins = 1usize << bins_log2;
            for v in [0u32, 1, 80, 65_535, u32::MAX] {
                assert!(bin_of(v, bins) < bins);
            }
        }
    }

    #[test]
    fn online_push_equals_batch_detect() {
        let (flows, span) = trace(8, 60_000, true);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = KlConfig { interval_ms: 60_000, ..KlConfig::default() };

        let mut batch = KlDetector::new(config);
        let batch_alarms = batch.detect_series(&series);

        let mut online = KlOnline::new(config);
        let online_alarms: Vec<Alarm> =
            series.intervals.iter().filter_map(|stat| online.push(stat)).collect();

        assert_eq!(batch_alarms, online_alarms);
        assert_eq!(online.intervals_seen(), series.len());
        assert_eq!(online.next_id(), batch_alarms.len() as u64);
    }

    #[test]
    fn kind_guess_port_scan_shape() {
        let flagged = vec![
            KlScore { feature: Feature::SrcIp, kl: 1.0, threshold: 0.1 },
            KlScore { feature: Feature::DstPort, kl: 2.0, threshold: 0.1 },
        ];
        assert_eq!(guess_kind(&flagged), "port scan");
    }
}

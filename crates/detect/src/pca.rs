//! Entropy + PCA subspace anomaly detection — the published algorithm
//! (Lakhina, Crovella & Diot, SIGCOMM 2005) that the paper's commercial
//! detector NetReflex "is based on".
//!
//! Each interval becomes a 7-dimensional observation: the normalized
//! entropies of the four mining features plus log-scaled flow/packet/byte
//! volumes ("anomalies on the basis of volume and IP features entropy
//! variations", §2 of the paper). PCA over the interval matrix splits the
//! space into a normal subspace (top components) and a residual subspace;
//! the squared prediction error (SPE, the Q-statistic) of each interval is
//! tested against the Jackson–Mudholkar `Q_alpha` limit. For flagged
//! intervals, the detector emits fine-grained meta-data: the concrete
//! feature values whose probability grew the most versus the interval's
//! baseline — "often at the level of individual IPs and port numbers".

use anomex_flow::feature::{Feature, FeatureItem, FeatureValue};
use anomex_flow::record::FlowRecord;
use anomex_flow::store::TimeRange;

use crate::alarm::Alarm;
use crate::interval::{IntervalSeries, IntervalStat};
use crate::linalg::{jacobi_eigen, Matrix};

/// Number of observation dimensions: 4 entropies + 3 volumes.
pub const DIMS: usize = 7;

/// PCA detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaConfig {
    /// Detection interval width in milliseconds.
    pub interval_ms: u64,
    /// Fraction of variance the normal subspace must capture (Lakhina
    /// used a fixed component count; energy-based selection is the
    /// standard robust variant).
    pub energy: f64,
    /// Normal-deviate multiplier `c_alpha` of the Q-limit
    /// (1.645 → 95%, 2.326 → 99%, 3.0 → 99.87%).
    pub c_alpha: f64,
    /// Minimum intervals required to fit the subspace at all.
    pub min_intervals: usize,
    /// Meta-data cap: values reported per deviating dimension.
    pub hints_per_feature: usize,
}

impl Default for PcaConfig {
    fn default() -> Self {
        PcaConfig {
            interval_ms: 5 * 60 * 1000,
            energy: 0.92,
            c_alpha: 2.326,
            min_intervals: 8,
            hints_per_feature: 3,
        }
    }
}

/// The entropy-PCA subspace detector.
#[derive(Debug, Clone)]
pub struct PcaDetector {
    config: PcaConfig,
    next_id: u64,
}

/// Internals of one detection run, exposed for tests and benches.
#[derive(Debug, Clone)]
pub struct PcaDiagnostics {
    /// Squared prediction error per interval.
    pub spe: Vec<f64>,
    /// Per-interval leave-one-out Q-limits.
    pub limits: Vec<f64>,
    /// The median leave-one-out Q-limit (representative value).
    pub q_limit: f64,
    /// Size of the normal subspace (top components kept).
    pub normal_components: usize,
}

impl PcaDetector {
    /// Detector with the given configuration.
    pub fn new(config: PcaConfig) -> PcaDetector {
        assert!(config.energy > 0.0 && config.energy < 1.0, "energy must be in (0,1)");
        PcaDetector { config, next_id: 0 }
    }

    /// Detector with default (paper-like) settings.
    pub fn with_defaults() -> PcaDetector {
        PcaDetector::new(PcaConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &PcaConfig {
        &self.config
    }

    /// Run detection over `flows` within `span`.
    pub fn detect(&mut self, flows: &[FlowRecord], span: TimeRange) -> Vec<Alarm> {
        let series = IntervalSeries::cut(flows, span, self.config.interval_ms);
        self.detect_series(&series).0
    }

    /// Run detection over a pre-cut series and return diagnostics too.
    ///
    /// The subspace is fitted **leave-one-out**: interval `t` is scored
    /// against a PCA model trained on every interval except `t`. A large
    /// anomaly otherwise drags the principal components toward itself
    /// ("subspace contamination", the classic failure mode of PCA
    /// detectors) and hides inside the normal subspace. At 7 dimensions a
    /// per-interval refit costs microseconds, so robustness is free.
    pub fn detect_series(
        &mut self,
        series: &IntervalSeries,
    ) -> (Vec<Alarm>, Option<PcaDiagnostics>) {
        let n = series.len();
        if n < self.config.min_intervals {
            return (Vec::new(), None);
        }

        let rows: Vec<Vec<f64>> = series.intervals.iter().map(observation).collect();

        let mut spe = vec![0.0f64; n];
        let mut limits = vec![f64::INFINITY; n];
        let mut residuals = vec![[0.0f64; DIMS]; n];
        let mut kept_sizes = vec![0usize; n];
        let mut modeled = false;

        for t in 0..n {
            let Some(fit) = fit_without(&rows, t, self.config.energy) else {
                continue; // degenerate training set for this interval
            };
            modeled = true;
            // Standardize the held-out row with the training statistics.
            let mut y = [0.0f64; DIMS];
            for d in 0..DIMS {
                let (mean, std) = fit.stats[d];
                y[d] = if std > 1e-12 { (rows[t][d] - mean) / std } else { rows[t][d] - mean };
            }
            let mut s = 0.0;
            let mut res = [0.0f64; DIMS];
            for (r, slot) in res.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (c, &yc) in y.iter().enumerate() {
                    acc += fit.residual_projector.get(r, c) * yc;
                }
                *slot = acc;
                s += acc * acc;
            }
            spe[t] = s;
            residuals[t] = res;
            limits[t] = q_alpha(&fit.residual_eigenvalues, self.config.c_alpha);
            kept_sizes[t] = fit.kept;
        }
        if !modeled {
            return (Vec::new(), None); // constant traffic: nothing to model
        }

        let mut alarms = Vec::new();
        for t in 0..n {
            if spe[t] <= limits[t] {
                continue;
            }
            let hints = self.meta_data(series, t, &residuals[t], &spe);
            let alarm = Alarm::new(self.next_id, "entropy-pca", series.intervals[t].range)
                .with_hints(hints)
                .with_kind(guess_kind(&residuals[t]))
                .with_score(spe[t], limits[t]);
            self.next_id += 1;
            alarms.push(alarm);
        }
        // Representative diagnostics: the median leave-one-out limit and
        // subspace size.
        let mut sorted_limits: Vec<f64> =
            limits.iter().copied().filter(|l| l.is_finite()).collect();
        sorted_limits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q_limit = sorted_limits.get(sorted_limits.len() / 2).copied().unwrap_or(f64::INFINITY);
        let mut sorted_kept: Vec<usize> = kept_sizes.iter().copied().filter(|&k| k > 0).collect();
        sorted_kept.sort_unstable();
        let normal_components = sorted_kept.get(sorted_kept.len() / 2).copied().unwrap_or(0);
        let diag = PcaDiagnostics { spe, limits, q_limit, normal_components };
        (alarms, Some(diag))
    }

    /// Fine-grained meta-data for a flagged interval `t`: per deviating
    /// entropy dimension, the values whose probability increased the most
    /// against the average of the quiet intervals.
    fn meta_data(
        &self,
        series: &IntervalSeries,
        t: usize,
        residual: &[f64; DIMS],
        spe: &[f64],
    ) -> Vec<FeatureItem> {
        // Quiet baseline: the interval with median SPE (cheap and robust).
        let mut order: Vec<usize> = (0..series.len()).filter(|&i| i != t).collect();
        order.sort_by(|&a, &b| spe[a].partial_cmp(&spe[b]).unwrap());
        let baseline_idx = order.get(order.len() / 2).copied();

        let mut hints = Vec::new();
        // Rank the four entropy dimensions by |residual| and keep those
        // carrying at least half of the strongest deviation.
        let mut dims: Vec<usize> = (0..4).collect();
        dims.sort_by(|&a, &b| residual[b].abs().partial_cmp(&residual[a].abs()).unwrap());
        let strongest = residual[dims[0]].abs().max(1e-9);

        for &d in &dims {
            if residual[d].abs() < 0.5 * strongest {
                break;
            }
            let feature = Feature::MINING[d];
            let current = &series.intervals[t].dists[d];
            let mut scored: Vec<(u32, f64)> = current
                .iter()
                .map(|(v, c)| {
                    let p_now = c as f64 / current.total().max(1) as f64;
                    let p_before = baseline_idx
                        .map(|b| series.intervals[b].dists[d].probability(v))
                        .unwrap_or(0.0);
                    (v, p_now - p_before)
                })
                .filter(|&(_, delta)| delta > 0.0)
                .collect();
            scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            scored.truncate(self.config.hints_per_feature);
            for (raw, _) in scored {
                if let Some(value) = FeatureValue::from_raw(feature, raw) {
                    if let Some(item) = FeatureItem::checked(feature, value) {
                        hints.push(item);
                    }
                }
            }
        }
        hints
    }
}

/// Incremental front-end for the PCA detector: a bounded sliding window
/// of interval summaries, refit on every new interval.
///
/// Unlike [`crate::kl::KlOnline`] this is not bit-identical with the
/// batch detector — PCA's leave-one-out fit fundamentally trains on the
/// whole series, so the online variant trains on the trailing `history`
/// intervals instead (the standard sliding-window PCA compromise).
/// Memory and per-interval cost are bounded by `history`, independent
/// of stream length; only an alarm on the **newest** interval is
/// reported, since older intervals were already judged when they were
/// newest.
#[derive(Debug, Clone)]
pub struct PcaSliding {
    config: PcaConfig,
    history: std::collections::VecDeque<IntervalStat>,
    cap: usize,
    next_id: u64,
}

impl PcaSliding {
    /// Sliding detector keeping the last `history` intervals (clamped
    /// up to `config.min_intervals`).
    pub fn new(config: PcaConfig, history: usize) -> PcaSliding {
        assert!(config.energy > 0.0 && config.energy < 1.0, "energy must be in (0,1)");
        let cap = history.max(config.min_intervals);
        PcaSliding {
            config,
            history: std::collections::VecDeque::with_capacity(cap + 1),
            cap,
            next_id: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PcaConfig {
        &self.config
    }

    /// Feed the next closed interval; returns an alarm if the newest
    /// interval deviates from the trailing window's subspace.
    pub fn push(&mut self, stat: &IntervalStat) -> Option<Alarm> {
        self.history.push_back(stat.clone());
        if self.history.len() > self.cap {
            self.history.pop_front();
        }
        if self.history.len() < self.config.min_intervals {
            return None;
        }
        let series = IntervalSeries {
            width_ms: self.config.interval_ms,
            intervals: self.history.iter().cloned().collect(),
        };
        let mut detector = PcaDetector::new(self.config);
        let (alarms, _) = detector.detect_series(&series);
        alarms.into_iter().find(|a| a.window == stat.range).map(|mut alarm| {
            alarm.id = self.next_id;
            self.next_id += 1;
            alarm
        })
    }
}

/// One leave-one-out PCA fit.
struct LooFit {
    /// Per-dimension `(mean, std)` of the training rows.
    stats: Vec<(f64, f64)>,
    /// `I - P P^T` over the kept components.
    residual_projector: Matrix,
    /// Eigenvalues of the residual subspace (for the Q-limit).
    residual_eigenvalues: Vec<f64>,
    /// Number of kept (normal-subspace) components.
    kept: usize,
}

/// Fit PCA on all rows except `skip`; `None` if the training covariance
/// is degenerate (constant traffic).
fn fit_without(rows: &[Vec<f64>], skip: usize, energy: f64) -> Option<LooFit> {
    let training: Vec<Vec<f64>> =
        rows.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, r)| r.clone()).collect();
    if training.len() < 2 {
        return None;
    }
    let mut y = Matrix::from_rows(&training);
    let stats = y.standardize_columns();
    let cov = y.covariance();
    let (eigenvalues, eigenvectors) = jacobi_eigen(&cov);

    let total: f64 = eigenvalues.iter().map(|&l| l.max(0.0)).sum();
    if total <= 1e-12 {
        return None;
    }
    let mut kept = 0usize;
    let mut acc = 0.0;
    for &l in &eigenvalues {
        acc += l.max(0.0);
        kept += 1;
        if acc / total >= energy {
            break;
        }
    }
    kept = kept.clamp(1, DIMS - 1); // always leave a residual space

    // The residual subspace must retain positive variance, or the Q-limit
    // degenerates to infinity and nothing can ever alarm. Low-rank
    // training data (smooth synthetic traffic) hits this when the energy
    // criterion swallows the whole spectrum: release components back into
    // the residual until it owns variance.
    let residual_floor = total * 1e-9;
    while kept > 1 && eigenvalues[kept..].iter().map(|&l| l.max(0.0)).sum::<f64>() <= residual_floor
    {
        kept -= 1;
    }

    let mut p = Matrix::zeros(DIMS, kept);
    for c in 0..kept {
        for r in 0..DIMS {
            p.set(r, c, eigenvectors.get(r, c));
        }
    }
    let ppt = p.matmul(&p.transpose());
    let mut residual_projector = Matrix::identity(DIMS);
    for r in 0..DIMS {
        for c in 0..DIMS {
            residual_projector.set(r, c, residual_projector.get(r, c) - ppt.get(r, c));
        }
    }
    Some(LooFit {
        stats,
        residual_projector,
        residual_eigenvalues: eigenvalues[kept..].to_vec(),
        kept,
    })
}

/// The 7-dimensional observation of one interval.
fn observation(stat: &IntervalStat) -> Vec<f64> {
    let h = stat.entropy_vector();
    vec![
        h[0],
        h[1],
        h[2],
        h[3],
        (stat.flows as f64 + 1.0).ln(),
        (stat.packets as f64 + 1.0).ln(),
        (stat.bytes as f64 + 1.0).ln(),
    ]
}

/// Jackson–Mudholkar Q-statistic limit at normal deviate `c_alpha`, from
/// the residual-subspace eigenvalues.
fn q_alpha(residual_eigenvalues: &[f64], c_alpha: f64) -> f64 {
    let phi: Vec<f64> = (1..=3)
        .map(|i| residual_eigenvalues.iter().map(|&l| l.max(0.0).powi(i)).sum::<f64>())
        .collect();
    let (phi1, phi2, phi3) = (phi[0], phi[1], phi[2]);
    if phi1 <= 1e-12 {
        return f64::INFINITY; // no residual variance -> nothing can exceed
    }
    if phi2 <= 1e-18 {
        return phi1 * 4.0; // degenerate but non-zero residual
    }
    let h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2 * phi2);
    let h0 = if h0.abs() < 1e-6 { 1e-6 } else { h0 };
    let term = c_alpha * (2.0 * phi2 * h0 * h0).sqrt() / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / (phi1 * phi1);
    if term <= 0.0 {
        // Extremely skewed residual spectrum: fall back to a high quantile
        // of a single-eigenvalue chi-square-like bound.
        return phi1 + c_alpha * (2.0 * phi2).sqrt();
    }
    phi1 * term.powf(1.0 / h0)
}

/// Crude label from the residual pattern (dims: 4 entropies, 3 volumes).
fn guess_kind(residual: &[f64; DIMS]) -> &'static str {
    let dst_port_up = residual[3] > 0.0;
    let dst_ip_up = residual[1] > 0.0;
    let src_ip_up = residual[0] > 0.0;
    let volume_up = residual[5] > 0.0 || residual[6] > 0.0;
    if dst_port_up && !dst_ip_up {
        "port scan"
    } else if dst_ip_up && !dst_port_up {
        "network scan"
    } else if src_ip_up && !dst_ip_up {
        "DDoS"
    } else if volume_up {
        "volume anomaly"
    } else {
        "distribution change"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::record::Protocol;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Benign traffic for `intervals` intervals; optionally a scan or a
    /// flood in one interval.
    fn trace(
        intervals: usize,
        width: u64,
        anomaly_at: Option<usize>,
        flood: bool,
    ) -> (Vec<FlowRecord>, TimeRange) {
        let mut flows = Vec::new();
        let span = TimeRange::new(0, intervals as u64 * width);
        for t in 0..intervals {
            let base = t as u64 * width;
            // Slight deterministic wobble so variance is non-degenerate.
            let n = 220 + (t % 3) as u32 * 15;
            for i in 0..n {
                flows.push(
                    FlowRecord::builder()
                        .time(base + (i as u64 * 77) % width, base + (i as u64 * 77) % width + 40)
                        .src(
                            Ipv4Addr::from(0x0A00_0000 + ((i * 7 + t as u32) % 60)),
                            1024 + (i % 700) as u16,
                        )
                        .dst(
                            Ipv4Addr::from(0xAC10_0000 + (i % 9)),
                            if i % 4 == 0 { 443 } else { 80 },
                        )
                        .proto(Protocol::TCP)
                        .volume(2 + (i % 5) as u64, 1200)
                        .build(),
                );
            }
            if anomaly_at == Some(t) {
                if flood {
                    // Point-to-point UDP flood: 2 flows, huge packet count.
                    for k in 0..2u64 {
                        flows.push(
                            FlowRecord::builder()
                                .time(base + k, base + width - 1)
                                .src(ip("10.77.0.1"), 4500)
                                .dst(ip("172.16.0.50"), 5060)
                                .proto(Protocol::UDP)
                                .volume(400_000, 400_000 * 1200)
                                .build(),
                        );
                    }
                } else {
                    for p in 1..=2_000u32 {
                        flows.push(
                            FlowRecord::builder()
                                .time(base + p as u64 % width, base + p as u64 % width + 1)
                                .src(ip("10.66.66.66"), 55_548)
                                .dst(ip("172.16.0.99"), p as u16)
                                .proto(Protocol::TCP)
                                .volume(1, 44)
                                .build(),
                        );
                    }
                }
            }
        }
        (flows, span)
    }

    #[test]
    fn quiet_trace_raises_no_alarm() {
        let (flows, span) = trace(16, 60_000, None, false);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let alarms = det.detect(&flows, span);
        assert!(
            alarms.is_empty(),
            "false alarms: {:?}",
            alarms.iter().map(|a| a.describe()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn port_scan_interval_flagged_with_scanner_hint() {
        let (flows, span) = trace(16, 60_000, Some(11), false);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let alarms = det.detect(&flows, span);
        assert!(!alarms.is_empty(), "scan not detected");
        let hit = alarms
            .iter()
            .find(|a| a.window.from_ms == 11 * 60_000)
            .expect("wrong interval flagged");
        assert!(
            hit.hints.iter().any(|h| *h == FeatureItem::src_ip(ip("10.66.66.66"))
                || *h == FeatureItem::dst_ip(ip("172.16.0.99"))
                || *h == FeatureItem::src_port(55_548)),
            "no useful hint: {:?}",
            hit.hints
        );
    }

    #[test]
    fn udp_flood_flagged_via_volume_dims() {
        let (flows, span) = trace(16, 60_000, Some(9), true);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let alarms = det.detect(&flows, span);
        assert!(
            alarms.iter().any(|a| a.window.from_ms == 9 * 60_000),
            "flood interval not flagged"
        );
    }

    #[test]
    fn too_few_intervals_returns_nothing() {
        let (flows, span) = trace(4, 60_000, Some(3), false);
        let mut det = PcaDetector::with_defaults();
        let (alarms, diag) = det.detect_series(&IntervalSeries::cut(&flows, span, 60_000));
        assert!(alarms.is_empty());
        assert!(diag.is_none());
    }

    #[test]
    fn diagnostics_expose_spe_and_limit() {
        let (flows, span) = trace(16, 60_000, Some(11), false);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let (_, diag) = det.detect_series(&IntervalSeries::cut(&flows, span, 60_000));
        let diag = diag.expect("diagnostics");
        assert_eq!(diag.spe.len(), 16);
        assert!(diag.q_limit.is_finite() && diag.q_limit > 0.0);
        assert!(diag.normal_components >= 1 && diag.normal_components < DIMS);
        // The anomalous interval carries the max SPE.
        let max_idx =
            diag.spe.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 11);
    }

    #[test]
    fn sliding_pca_flags_scan_in_newest_interval_only() {
        let (flows, span) = trace(16, 60_000, Some(12), false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut sliding = PcaSliding::new(config, 12);
        let mut fired: Vec<(usize, Alarm)> = Vec::new();
        for (t, stat) in series.intervals.iter().enumerate() {
            if let Some(alarm) = sliding.push(stat) {
                fired.push((t, alarm));
            }
        }
        assert!(
            fired.iter().any(|(t, _)| *t == 12),
            "scan interval not flagged: {:?}",
            fired.iter().map(|(t, a)| (*t, a.describe())).collect::<Vec<_>>()
        );
        // Alarm ids are assigned by the sliding adapter, in order.
        for (i, (_, alarm)) in fired.iter().enumerate() {
            assert_eq!(alarm.id, i as u64);
        }
    }

    #[test]
    fn sliding_pca_is_quiet_on_benign_traffic() {
        let (flows, span) = trace(16, 60_000, None, false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut sliding = PcaSliding::new(config, 12);
        let fired: Vec<Alarm> =
            series.intervals.iter().filter_map(|stat| sliding.push(stat)).collect();
        assert!(fired.is_empty(), "{:?}", fired.iter().map(|a| a.describe()).collect::<Vec<_>>());
    }

    #[test]
    fn q_alpha_monotone_in_confidence() {
        let eig = [0.5, 0.3, 0.1];
        assert!(q_alpha(&eig, 3.0) > q_alpha(&eig, 1.645));
    }

    #[test]
    fn q_alpha_infinite_when_no_residual_variance() {
        assert!(q_alpha(&[0.0, 0.0], 2.0).is_infinite());
        assert!(q_alpha(&[], 2.0).is_infinite());
    }

    #[test]
    fn observation_has_seven_dims() {
        let stat = IntervalStat::empty(TimeRange::new(0, 1));
        assert_eq!(observation(&stat).len(), DIMS);
    }

    #[test]
    fn guess_kind_scan_vs_flood() {
        let mut r = [0.0f64; DIMS];
        r[3] = 2.0; // dstPort entropy up
        r[1] = -1.0;
        assert_eq!(guess_kind(&r), "port scan");
        let mut r2 = [0.0f64; DIMS];
        r2[1] = 2.0;
        r2[3] = -0.5;
        assert_eq!(guess_kind(&r2), "network scan");
    }
}

//! Entropy + PCA subspace anomaly detection — the published algorithm
//! (Lakhina, Crovella & Diot, SIGCOMM 2005) that the paper's commercial
//! detector NetReflex "is based on".
//!
//! Each interval becomes a 7-dimensional observation: the normalized
//! entropies of the four mining features plus log-scaled flow/packet/byte
//! volumes ("anomalies on the basis of volume and IP features entropy
//! variations", §2 of the paper). PCA over the interval matrix splits the
//! space into a normal subspace (top components) and a residual subspace;
//! the squared prediction error (SPE, the Q-statistic) of each interval is
//! tested against the Jackson–Mudholkar `Q_alpha` limit. For flagged
//! intervals, the detector emits fine-grained meta-data: the concrete
//! feature values whose probability grew the most versus the interval's
//! baseline — "often at the level of individual IPs and port numbers".

use anomex_flow::feature::{Feature, FeatureItem, FeatureValue};
use anomex_flow::record::FlowRecord;
use anomex_flow::store::TimeRange;

use crate::alarm::Alarm;
use crate::detector::Detector;
use crate::interval::{IntervalSeries, IntervalStat};
use crate::linalg::{jacobi_eigen, Matrix};

/// Number of observation dimensions: 4 entropies + 3 volumes.
pub const DIMS: usize = 7;

/// PCA detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaConfig {
    /// Detection interval width in milliseconds.
    pub interval_ms: u64,
    /// Fraction of variance the normal subspace must capture (Lakhina
    /// used a fixed component count; energy-based selection is the
    /// standard robust variant).
    pub energy: f64,
    /// Normal-deviate multiplier `c_alpha` of the Q-limit
    /// (1.645 → 95%, 2.326 → 99%, 3.0 → 99.87%).
    pub c_alpha: f64,
    /// Minimum intervals required to fit the subspace at all.
    pub min_intervals: usize,
    /// Meta-data cap: values reported per deviating dimension.
    pub hints_per_feature: usize,
}

impl Default for PcaConfig {
    fn default() -> Self {
        PcaConfig {
            interval_ms: 5 * 60 * 1000,
            energy: 0.92,
            c_alpha: 2.326,
            min_intervals: 8,
            hints_per_feature: 3,
        }
    }
}

/// The entropy-PCA subspace detector.
#[derive(Debug, Clone)]
pub struct PcaDetector {
    config: PcaConfig,
    next_id: u64,
}

/// Internals of one detection run, exposed for tests and benches.
#[derive(Debug, Clone)]
pub struct PcaDiagnostics {
    /// Squared prediction error per interval.
    pub spe: Vec<f64>,
    /// Per-interval leave-one-out Q-limits.
    pub limits: Vec<f64>,
    /// The median leave-one-out Q-limit (representative value).
    pub q_limit: f64,
    /// Size of the normal subspace (top components kept).
    pub normal_components: usize,
}

impl PcaDetector {
    /// Detector with the given configuration.
    pub fn new(config: PcaConfig) -> PcaDetector {
        assert!(config.energy > 0.0 && config.energy < 1.0, "energy must be in (0,1)");
        PcaDetector { config, next_id: 0 }
    }

    /// Detector with default (paper-like) settings.
    pub fn with_defaults() -> PcaDetector {
        PcaDetector::new(PcaConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &PcaConfig {
        &self.config
    }

    /// Run detection over `flows` within `span`.
    pub fn detect(&mut self, flows: &[FlowRecord], span: TimeRange) -> Vec<Alarm> {
        let series = IntervalSeries::cut(flows, span, self.config.interval_ms);
        self.detect_series(&series).0
    }

    /// Run detection over a pre-cut series and return diagnostics too.
    ///
    /// The subspace is fitted **leave-one-out**: interval `t` is scored
    /// against a PCA model trained on every interval except `t`. A large
    /// anomaly otherwise drags the principal components toward itself
    /// ("subspace contamination", the classic failure mode of PCA
    /// detectors) and hides inside the normal subspace. At 7 dimensions a
    /// per-interval refit costs microseconds, so robustness is free.
    pub fn detect_series(
        &mut self,
        series: &IntervalSeries,
    ) -> (Vec<Alarm>, Option<PcaDiagnostics>) {
        let n = series.len();
        if n < self.config.min_intervals {
            return (Vec::new(), None);
        }

        let rows: Vec<Vec<f64>> = series.intervals.iter().map(observation).collect();

        let mut spe = vec![0.0f64; n];
        let mut limits = vec![f64::INFINITY; n];
        let mut residuals = vec![[0.0f64; DIMS]; n];
        let mut kept_sizes = vec![0usize; n];
        let mut modeled = false;

        for t in 0..n {
            let Some(fit) = fit_without(&rows, t, self.config.energy) else {
                continue; // degenerate training set for this interval
            };
            modeled = true;
            // Standardize the held-out row with the training statistics.
            let mut y = [0.0f64; DIMS];
            for d in 0..DIMS {
                let (mean, std) = fit.stats[d];
                y[d] = if std > 1e-12 { (rows[t][d] - mean) / std } else { rows[t][d] - mean };
            }
            let mut s = 0.0;
            let mut res = [0.0f64; DIMS];
            for (r, slot) in res.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (c, &yc) in y.iter().enumerate() {
                    acc += fit.residual_projector.get(r, c) * yc;
                }
                *slot = acc;
                s += acc * acc;
            }
            spe[t] = s;
            residuals[t] = res;
            limits[t] = q_alpha(&fit.residual_eigenvalues, self.config.c_alpha);
            kept_sizes[t] = fit.kept;
        }
        if !modeled {
            return (Vec::new(), None); // constant traffic: nothing to model
        }

        let mut alarms = Vec::new();
        for t in 0..n {
            if spe[t] <= limits[t] {
                continue;
            }
            let hints = self.meta_data(series, t, &residuals[t], &spe);
            let alarm = Alarm::new(self.next_id, "entropy-pca", series.intervals[t].range)
                .with_hints(hints)
                .with_kind(guess_kind(&residuals[t]))
                .with_score(spe[t], limits[t]);
            self.next_id += 1;
            alarms.push(alarm);
        }
        // Representative diagnostics: the median leave-one-out limit and
        // subspace size.
        let mut sorted_limits: Vec<f64> =
            limits.iter().copied().filter(|l| l.is_finite()).collect();
        sorted_limits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q_limit = sorted_limits.get(sorted_limits.len() / 2).copied().unwrap_or(f64::INFINITY);
        let mut sorted_kept: Vec<usize> = kept_sizes.iter().copied().filter(|&k| k > 0).collect();
        sorted_kept.sort_unstable();
        let normal_components = sorted_kept.get(sorted_kept.len() / 2).copied().unwrap_or(0);
        let diag = PcaDiagnostics { spe, limits, q_limit, normal_components };
        (alarms, Some(diag))
    }

    /// Fine-grained meta-data for a flagged interval `t`: per deviating
    /// entropy dimension, the values whose probability increased the most
    /// against the average of the quiet intervals.
    fn meta_data(
        &self,
        series: &IntervalSeries,
        t: usize,
        residual: &[f64; DIMS],
        spe: &[f64],
    ) -> Vec<FeatureItem> {
        // Quiet baseline: the interval with median SPE (cheap and robust).
        let mut order: Vec<usize> = (0..series.len()).filter(|&i| i != t).collect();
        order.sort_by(|&a, &b| spe[a].partial_cmp(&spe[b]).unwrap());
        let baseline = order.get(order.len() / 2).map(|&b| &series.intervals[b]);
        deviation_hints(&series.intervals[t], baseline, residual, self.config.hints_per_feature)
    }
}

/// Meta-data shared by the batch and sliding PCA paths: per deviating
/// entropy dimension of `residual`, the values of `current` whose
/// probability increased the most against `baseline`.
fn deviation_hints(
    current: &IntervalStat,
    baseline: Option<&IntervalStat>,
    residual: &[f64; DIMS],
    hints_per_feature: usize,
) -> Vec<FeatureItem> {
    let mut hints = Vec::new();
    // Rank the four entropy dimensions by |residual| and keep those
    // carrying at least half of the strongest deviation.
    let mut dims: Vec<usize> = (0..4).collect();
    dims.sort_by(|&a, &b| residual[b].abs().partial_cmp(&residual[a].abs()).unwrap());
    let strongest = residual[dims[0]].abs().max(1e-9);

    for &d in &dims {
        if residual[d].abs() < 0.5 * strongest {
            break;
        }
        let feature = Feature::MINING[d];
        let dist = &current.dists[d];
        let mut scored: Vec<(u32, f64)> = dist
            .iter()
            .map(|(v, c)| {
                let p_now = c as f64 / dist.total().max(1) as f64;
                let p_before = baseline.map(|b| b.dists[d].probability(v)).unwrap_or(0.0);
                (v, p_now - p_before)
            })
            .filter(|&(_, delta)| delta > 0.0)
            .collect();
        scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(hints_per_feature);
        for (raw, _) in scored {
            if let Some(value) = FeatureValue::from_raw(feature, raw) {
                if let Some(item) = FeatureItem::checked(feature, value) {
                    hints.push(item);
                }
            }
        }
    }
    hints
}

/// How [`PcaSliding`] maintains its subspace model on window slide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcaMode {
    /// Rank-one covariance update/downdate: per-interval cost is
    /// O(`DIMS`²) plus one `DIMS`×`DIMS` eigendecomposition, independent
    /// of history length. The default.
    #[default]
    Incremental,
    /// Full leave-one-out refit of the trailing window on every
    /// interval — O(history²) fits per interval; the reference
    /// implementation the incremental path is validated against.
    Refit,
}

/// Incremental front-end for the PCA detector: a bounded sliding window
/// of interval summaries, the newest interval scored against a subspace
/// trained on the rest of the window.
///
/// Unlike [`crate::kl::KlOnline`] this is not bit-identical with the
/// batch detector — PCA's leave-one-out fit fundamentally trains on the
/// whole series, so the online variant trains on the trailing `history`
/// intervals instead (the standard sliding-window PCA compromise).
/// Memory and per-interval cost are bounded by `history`, independent
/// of stream length; only an alarm on the **newest** interval is
/// reported, since older intervals were already judged when they were
/// newest.
///
/// In [`PcaMode::Incremental`] (the default) the training moments
/// (per-dimension sums and the raw Gram matrix) are updated with one
/// rank-one addition per arriving interval and one rank-one subtraction
/// per evicted interval, so the per-interval cost is O(`DIMS`²) plus a
/// constant 7×7 eigendecomposition — history length only bounds memory.
/// [`PcaMode::Refit`] keeps the original refit-everything behavior; the
/// two agree on which windows alarm up to floating-point rounding at
/// the decision boundary (`tests/detector_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct PcaSliding {
    config: PcaConfig,
    mode: PcaMode,
    cap: usize,
    next_id: u64,
    /// Trailing interval summaries (newest last), for hints and refits.
    history: std::collections::VecDeque<IntervalStat>,
    /// Observation vectors parallel to `history` (cached: entropy
    /// extraction is O(distinct values) and must not run on eviction).
    obs: std::collections::VecDeque<[f64; DIMS]>,
    /// SPE each retained interval scored when it was newest (`NaN`
    /// while the model was still unfittable) — the hint baseline.
    spe_cache: std::collections::VecDeque<f64>,
    /// Shift applied before accumulating moments. Raw second moments
    /// lose `mean²/var` digits to cancellation — enough to inflate
    /// near-zero eigenvalues past the residual-release floor — so
    /// moments are kept for `x - anchor`, making precision relative to
    /// the window's spread. Seeded from the first observation,
    /// refreshed to the window mean on every rebuild.
    anchor: Option<[f64; DIMS]>,
    /// Rebuild the moments from scratch after this many downdates
    /// ([`MOMENT_REBUILD_EVERY`]; tests lower it to exercise the
    /// rebuild path).
    rebuild_every: usize,
    /// Running per-dimension sums over anchored `obs`.
    sum: [f64; DIMS],
    /// Running anchored Gram matrix `Σ (x-a)(x-a)ᵀ` over `obs`.
    gram: [[f64; DIMS]; DIMS],
    /// Σ (x-a)² over every update **and** downdate since the last
    /// rebuild (monotone, unlike `gram`'s diagonal): the magnitude the
    /// accumulated rounding error in `gram[d][d]` is proportional to,
    /// which sets the constant-dimension noise floor in
    /// [`fit_from_moments`].
    churn: [f64; DIMS],
    /// Evictions since the moments were last rebuilt from scratch
    /// (bounds float drift from repeated downdates).
    evictions_since_rebuild: usize,
    /// `(spe, q_limit)` of the newest scored interval.
    last_diag: Option<(f64, f64)>,
}

/// Rebuild the moments from scratch after this many downdates: often
/// enough that drift cannot accumulate, rare enough that the amortized
/// cost per interval stays O(`DIMS`²).
const MOMENT_REBUILD_EVERY: usize = 1_024;

impl PcaSliding {
    /// Sliding detector keeping the last `history` intervals (clamped
    /// up to `config.min_intervals`), in the default
    /// [`PcaMode::Incremental`].
    pub fn new(config: PcaConfig, history: usize) -> PcaSliding {
        PcaSliding::with_mode(config, history, PcaMode::default())
    }

    /// Sliding detector with an explicit update [`PcaMode`].
    pub fn with_mode(config: PcaConfig, history: usize, mode: PcaMode) -> PcaSliding {
        assert!(config.energy > 0.0 && config.energy < 1.0, "energy must be in (0,1)");
        let cap = history.max(config.min_intervals);
        PcaSliding {
            config,
            mode,
            cap,
            next_id: 0,
            history: std::collections::VecDeque::with_capacity(cap + 1),
            obs: std::collections::VecDeque::with_capacity(cap + 1),
            spe_cache: std::collections::VecDeque::with_capacity(cap + 1),
            anchor: None,
            rebuild_every: MOMENT_REBUILD_EVERY,
            sum: [0.0; DIMS],
            gram: [[0.0; DIMS]; DIMS],
            churn: [0.0; DIMS],
            evictions_since_rebuild: 0,
            last_diag: None,
        }
    }

    /// Override the moment-rebuild cadence (evictions between full
    /// rebuilds). Exists so tests can force the rebuild/re-anchor path
    /// without sliding 1024 windows; production code should keep the
    /// default.
    #[doc(hidden)]
    pub fn set_rebuild_every(&mut self, evictions: usize) {
        self.rebuild_every = evictions.max(1);
    }

    /// The active configuration.
    pub fn config(&self) -> &PcaConfig {
        &self.config
    }

    /// The active update mode.
    pub fn mode(&self) -> PcaMode {
        self.mode
    }

    /// `(spe, q_limit)` of the most recently scored interval — `None`
    /// while the window is still too short to model.
    pub fn last_diag(&self) -> Option<(f64, f64)> {
        self.last_diag
    }

    /// Feed the next closed interval; returns an alarm if the newest
    /// interval deviates from the trailing window's subspace.
    pub fn push(&mut self, stat: &IntervalStat) -> Option<Alarm> {
        match self.mode {
            PcaMode::Incremental => self.push_incremental(stat),
            PcaMode::Refit => self.push_refit(stat),
        }
    }

    /// Original behavior: slide the window, refit leave-one-out PCA
    /// over it, keep only the newest interval's alarm.
    fn push_refit(&mut self, stat: &IntervalStat) -> Option<Alarm> {
        self.history.push_back(stat.clone());
        if self.history.len() > self.cap {
            self.history.pop_front();
        }
        self.last_diag = None;
        if self.history.len() < self.config.min_intervals {
            return None;
        }
        let series = IntervalSeries {
            width_ms: self.config.interval_ms,
            intervals: self.history.iter().cloned().collect(),
        };
        let mut detector = PcaDetector::new(self.config);
        let (alarms, diag) = detector.detect_series(&series);
        if let Some(diag) = &diag {
            // Mirror the incremental convention: diagnostics only when
            // the NEWEST interval's own leave-one-out training set was
            // fittable. `detect_series` leaves (0.0, inf) placeholders
            // for intervals whose fit failed even when other intervals
            // modeled, which would report the newest as scored when a
            // constant-traffic window made it unscorable.
            let rows: Vec<Vec<f64>> = series.intervals.iter().map(observation).collect();
            let newest = series.len() - 1;
            if fit_without(&rows, newest, self.config.energy).is_some() {
                self.last_diag = Some((diag.spe[newest], diag.limits[newest]));
            }
        }
        alarms.into_iter().find(|a| a.window == stat.range).map(|mut alarm| {
            alarm.id = self.next_id;
            self.next_id += 1;
            alarm
        })
    }

    /// Incremental path: downdate the evicted interval, fit from the
    /// running moments (which now cover exactly the window minus the
    /// newest interval — the same training set the refit's
    /// leave-one-out uses for the newest row), score, then update.
    fn push_incremental(&mut self, stat: &IntervalStat) -> Option<Alarm> {
        let x = observation_array(stat);
        self.anchor.get_or_insert(x);
        if self.history.len() >= self.cap {
            self.evict_oldest();
        }
        // Read the anchor only after the eviction: evicting can trigger
        // a moment rebuild that re-anchors, and scoring or folding `x`
        // in with the pre-rebuild anchor would corrupt the moments
        // until the next rebuild.
        let anchor = self.anchor.expect("anchor seeded above");

        self.last_diag = None;
        let n_train = self.obs.len();
        let mut result = None;
        let mut spe_now = f64::NAN;
        // Mirrors the refit gate: the window including the newest
        // interval must reach `min_intervals`, and `fit_without` needs
        // at least two training rows.
        if self.history.len() + 1 >= self.config.min_intervals && n_train >= 2 {
            if let Some(fit) = fit_from_moments(
                n_train,
                &self.sum,
                &self.gram,
                &self.churn,
                &anchor,
                self.config.energy,
            ) {
                let mut y = [0.0f64; DIMS];
                for d in 0..DIMS {
                    let (mean, std) = fit.stats[d];
                    y[d] = if std > 1e-12 { (x[d] - mean) / std } else { x[d] - mean };
                }
                let mut spe = 0.0;
                let mut res = [0.0f64; DIMS];
                for (r, slot) in res.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (c, &yc) in y.iter().enumerate() {
                        acc += fit.residual_projector.get(r, c) * yc;
                    }
                    *slot = acc;
                    spe += acc * acc;
                }
                let limit = q_alpha(&fit.residual_eigenvalues, self.config.c_alpha);
                spe_now = spe;
                self.last_diag = Some((spe, limit));
                if spe > limit {
                    let hints = deviation_hints(
                        stat,
                        self.quiet_baseline(),
                        &res,
                        self.config.hints_per_feature,
                    );
                    let alarm = Alarm::new(self.next_id, "entropy-pca", stat.range)
                        .with_hints(hints)
                        .with_kind(guess_kind(&res))
                        .with_score(spe, limit);
                    self.next_id += 1;
                    result = Some(alarm);
                }
            }
        }

        // Fold the newest interval into the window.
        rank_one_update(&mut self.sum, &mut self.gram, &mut self.churn, &shifted(&x, &anchor), 1.0);
        self.obs.push_back(x);
        self.history.push_back(stat.clone());
        self.spe_cache.push_back(spe_now);
        result
    }

    /// The retained interval with median cached SPE — the quiet-traffic
    /// baseline for hint generation (mirrors the batch detector's
    /// median-SPE choice over its series).
    fn quiet_baseline(&self) -> Option<&IntervalStat> {
        let mut order: Vec<usize> =
            (0..self.history.len()).filter(|&i| self.spe_cache[i].is_finite()).collect();
        if order.is_empty() {
            return None;
        }
        order.sort_by(|&a, &b| self.spe_cache[a].partial_cmp(&self.spe_cache[b]).unwrap());
        order.get(order.len() / 2).map(|&i| &self.history[i])
    }

    fn evict_oldest(&mut self) {
        let Some(old) = self.obs.pop_front() else {
            return;
        };
        self.history.pop_front();
        self.spe_cache.pop_front();
        let anchor = self.anchor.expect("anchor set before any observation entered the moments");
        rank_one_update(
            &mut self.sum,
            &mut self.gram,
            &mut self.churn,
            &shifted(&old, &anchor),
            -1.0,
        );
        self.evictions_since_rebuild += 1;
        if self.evictions_since_rebuild >= self.rebuild_every {
            self.evictions_since_rebuild = 0;
            self.rebuild_moments();
        }
    }

    /// Recompute the moments from the retained raw observations,
    /// re-anchoring at the current window mean — clears both downdate
    /// drift and any staleness of the original anchor.
    fn rebuild_moments(&mut self) {
        let n = self.obs.len().max(1) as f64;
        let mut anchor = [0.0f64; DIMS];
        for row in &self.obs {
            for d in 0..DIMS {
                anchor[d] += row[d];
            }
        }
        for a in &mut anchor {
            *a /= n;
        }
        self.sum = [0.0; DIMS];
        self.gram = [[0.0; DIMS]; DIMS];
        self.churn = [0.0; DIMS];
        for row in &self.obs {
            rank_one_update(
                &mut self.sum,
                &mut self.gram,
                &mut self.churn,
                &shifted(row, &anchor),
                1.0,
            );
        }
        self.anchor = Some(anchor);
    }
}

impl Detector for PcaSliding {
    fn name(&self) -> &str {
        "entropy-pca"
    }

    fn interval_ms(&self) -> u64 {
        self.config.interval_ms
    }

    fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
        PcaSliding::push(self, stat).into_iter().collect()
    }
}

/// Add (`sign = 1.0`) or subtract (`sign = -1.0`) one observation's
/// rank-one contribution to the running moments — the O(`DIMS`²) slide.
/// `churn` grows on updates and downdates alike: it tracks the total
/// magnitude that has passed through `gram`'s diagonal, i.e. the scale
/// of its accumulated rounding error.
fn rank_one_update(
    sum: &mut [f64; DIMS],
    gram: &mut [[f64; DIMS]; DIMS],
    churn: &mut [f64; DIMS],
    x: &[f64; DIMS],
    sign: f64,
) {
    for d in 0..DIMS {
        sum[d] += sign * x[d];
        churn[d] += x[d] * x[d];
        for e in 0..DIMS {
            gram[d][e] += sign * x[d] * x[e];
        }
    }
}

/// One leave-one-out PCA fit.
struct LooFit {
    /// Per-dimension `(mean, std)` of the training rows.
    stats: Vec<(f64, f64)>,
    /// `I - P P^T` over the kept components.
    residual_projector: Matrix,
    /// Eigenvalues of the residual subspace (for the Q-limit).
    residual_eigenvalues: Vec<f64>,
    /// Number of kept (normal-subspace) components.
    kept: usize,
}

/// Fit PCA on all rows except `skip`; `None` if the training covariance
/// is degenerate (constant traffic).
fn fit_without(rows: &[Vec<f64>], skip: usize, energy: f64) -> Option<LooFit> {
    let training: Vec<Vec<f64>> =
        rows.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, r)| r.clone()).collect();
    if training.len() < 2 {
        return None;
    }
    let mut y = Matrix::from_rows(&training);
    let stats = y.standardize_columns();
    let cov = y.covariance();
    finish_fit(stats, &cov, energy)
}

/// One observation shifted by the moment anchor.
fn shifted(x: &[f64; DIMS], anchor: &[f64; DIMS]) -> [f64; DIMS] {
    std::array::from_fn(|d| x[d] - anchor[d])
}

/// Fit PCA from running moments of `n` anchored observations: mean,
/// population std and the correlation-style covariance are derived from
/// `sum` and the anchored Gram matrix in O(`DIMS`²) — the same
/// statistics `standardize_columns` + `covariance` compute from the raw
/// rows, up to floating-point rounding (anchoring keeps that rounding
/// relative to the window's spread; see [`PcaSliding`]'s `anchor`).
fn fit_from_moments(
    n: usize,
    sum: &[f64; DIMS],
    gram: &[[f64; DIMS]; DIMS],
    churn: &[f64; DIMS],
    anchor: &[f64; DIMS],
    energy: f64,
) -> Option<LooFit> {
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    // `sum`/`gram` are moments of `x - anchor`; shifts leave variances
    // and covariances untouched, so only the reported mean de-shifts.
    let mut shifted_mean = [0.0f64; DIMS];
    let mut std = [0.0f64; DIMS];
    for d in 0..DIMS {
        shifted_mean[d] = sum[d] / nf;
        let second = gram[d][d] / nf;
        let var = second - shifted_mean[d] * shifted_mean[d];
        // `second - mean²` cancels catastrophically when the dimension
        // is (near-)constant away from the anchor: the residue is pure
        // rounding noise, yet can clear the 1e-12 constant-column gate
        // and then standardization divides by a fictitious 1e-8-ish
        // std, exploding the SPE. The noise scale is set by everything
        // that ever passed through the accumulator (`churn`), not by
        // the current window alone — downdated history leaves its
        // rounding residue behind. Anything at or below that floor is
        // constant.
        let noise_floor = 8.0 * f64::EPSILON * (churn[d] / nf + shifted_mean[d] * shifted_mean[d]);
        std[d] = if var <= noise_floor { 0.0 } else { var.sqrt() };
    }
    // Matches the row path: columns are z-scored only when std exceeds
    // 1e-12 (constant dimensions are centered, not scaled), and the
    // covariance divides by n-1. Constant dimensions get exactly-zero
    // covariance entries — the row path's centered column is zero to
    // rounding, and carrying our (larger) cancellation residue instead
    // would inflate the junk tail of the spectrum past the
    // residual-release floor.
    let denom = (n.max(2) - 1) as f64;
    let mut cov = Matrix::zeros(DIMS, DIMS);
    for i in 0..DIMS {
        let si = if std[i] > 1e-12 { std[i] } else { 1.0 };
        for j in i..DIMS {
            let sj = if std[j] > 1e-12 { std[j] } else { 1.0 };
            let v = if std[i] <= 1e-12 || std[j] <= 1e-12 {
                0.0
            } else {
                (gram[i][j] - nf * shifted_mean[i] * shifted_mean[j]) / (denom * si * sj)
            };
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    let stats: Vec<(f64, f64)> = (0..DIMS)
        .map(|d| (anchor[d] + shifted_mean[d], if std[d] > 1e-12 { std[d] } else { 0.0 }))
        .collect();
    finish_fit(stats, &cov, energy)
}

/// Shared back half of a fit: eigendecompose the covariance, pick the
/// normal subspace by energy, build the residual projector.
fn finish_fit(stats: Vec<(f64, f64)>, cov: &Matrix, energy: f64) -> Option<LooFit> {
    let (eigenvalues, eigenvectors) = jacobi_eigen(cov);

    let total: f64 = eigenvalues.iter().map(|&l| l.max(0.0)).sum();
    if total <= 1e-12 {
        return None;
    }
    let mut kept = 0usize;
    let mut acc = 0.0;
    for &l in &eigenvalues {
        acc += l.max(0.0);
        kept += 1;
        if acc / total >= energy {
            break;
        }
    }
    kept = kept.clamp(1, DIMS - 1); // always leave a residual space

    // The residual subspace must retain positive variance, or the Q-limit
    // degenerates to infinity and nothing can ever alarm. Low-rank
    // training data (smooth synthetic traffic) hits this when the energy
    // criterion swallows the whole spectrum: release components back into
    // the residual until it owns variance.
    let residual_floor = total * 1e-9;
    while kept > 1 && eigenvalues[kept..].iter().map(|&l| l.max(0.0)).sum::<f64>() <= residual_floor
    {
        kept -= 1;
    }

    let mut p = Matrix::zeros(DIMS, kept);
    for c in 0..kept {
        for r in 0..DIMS {
            p.set(r, c, eigenvectors.get(r, c));
        }
    }
    let ppt = p.matmul(&p.transpose());
    let mut residual_projector = Matrix::identity(DIMS);
    for r in 0..DIMS {
        for c in 0..DIMS {
            residual_projector.set(r, c, residual_projector.get(r, c) - ppt.get(r, c));
        }
    }
    Some(LooFit {
        stats,
        residual_projector,
        residual_eigenvalues: eigenvalues[kept..].to_vec(),
        kept,
    })
}

/// The 7-dimensional observation of one interval.
fn observation(stat: &IntervalStat) -> Vec<f64> {
    observation_array(stat).to_vec()
}

/// The 7-dimensional observation as a fixed array (no allocation).
fn observation_array(stat: &IntervalStat) -> [f64; DIMS] {
    let h = stat.entropy_vector();
    [
        h[0],
        h[1],
        h[2],
        h[3],
        (stat.flows as f64 + 1.0).ln(),
        (stat.packets as f64 + 1.0).ln(),
        (stat.bytes as f64 + 1.0).ln(),
    ]
}

/// Jackson–Mudholkar Q-statistic limit at normal deviate `c_alpha`, from
/// the residual-subspace eigenvalues.
fn q_alpha(residual_eigenvalues: &[f64], c_alpha: f64) -> f64 {
    let phi: Vec<f64> = (1..=3)
        .map(|i| residual_eigenvalues.iter().map(|&l| l.max(0.0).powi(i)).sum::<f64>())
        .collect();
    let (phi1, phi2, phi3) = (phi[0], phi[1], phi[2]);
    if phi1 <= 1e-12 {
        return f64::INFINITY; // no residual variance -> nothing can exceed
    }
    if phi2 <= 1e-18 {
        return phi1 * 4.0; // degenerate but non-zero residual
    }
    let h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2 * phi2);
    let h0 = if h0.abs() < 1e-6 { 1e-6 } else { h0 };
    let term = c_alpha * (2.0 * phi2 * h0 * h0).sqrt() / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / (phi1 * phi1);
    if term <= 0.0 {
        // Extremely skewed residual spectrum: fall back to a high quantile
        // of a single-eigenvalue chi-square-like bound.
        return phi1 + c_alpha * (2.0 * phi2).sqrt();
    }
    phi1 * term.powf(1.0 / h0)
}

/// Crude label from the residual pattern (dims: 4 entropies, 3 volumes).
fn guess_kind(residual: &[f64; DIMS]) -> &'static str {
    let dst_port_up = residual[3] > 0.0;
    let dst_ip_up = residual[1] > 0.0;
    let src_ip_up = residual[0] > 0.0;
    let volume_up = residual[5] > 0.0 || residual[6] > 0.0;
    if dst_port_up && !dst_ip_up {
        "port scan"
    } else if dst_ip_up && !dst_port_up {
        "network scan"
    } else if src_ip_up && !dst_ip_up {
        "DDoS"
    } else if volume_up {
        "volume anomaly"
    } else {
        "distribution change"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::record::Protocol;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Benign traffic for `intervals` intervals; optionally a scan or a
    /// flood in one interval.
    fn trace(
        intervals: usize,
        width: u64,
        anomaly_at: Option<usize>,
        flood: bool,
    ) -> (Vec<FlowRecord>, TimeRange) {
        let mut flows = Vec::new();
        let span = TimeRange::new(0, intervals as u64 * width);
        for t in 0..intervals {
            let base = t as u64 * width;
            // Slight deterministic wobble so variance is non-degenerate.
            let n = 220 + (t % 3) as u32 * 15;
            for i in 0..n {
                flows.push(
                    FlowRecord::builder()
                        .time(base + (i as u64 * 77) % width, base + (i as u64 * 77) % width + 40)
                        .src(
                            Ipv4Addr::from(0x0A00_0000 + ((i * 7 + t as u32) % 60)),
                            1024 + (i % 700) as u16,
                        )
                        .dst(
                            Ipv4Addr::from(0xAC10_0000 + (i % 9)),
                            if i % 4 == 0 { 443 } else { 80 },
                        )
                        .proto(Protocol::TCP)
                        .volume(2 + (i % 5) as u64, 1200)
                        .build(),
                );
            }
            if anomaly_at == Some(t) {
                if flood {
                    // Point-to-point UDP flood: 2 flows, huge packet count.
                    for k in 0..2u64 {
                        flows.push(
                            FlowRecord::builder()
                                .time(base + k, base + width - 1)
                                .src(ip("10.77.0.1"), 4500)
                                .dst(ip("172.16.0.50"), 5060)
                                .proto(Protocol::UDP)
                                .volume(400_000, 400_000 * 1200)
                                .build(),
                        );
                    }
                } else {
                    for p in 1..=2_000u32 {
                        flows.push(
                            FlowRecord::builder()
                                .time(base + p as u64 % width, base + p as u64 % width + 1)
                                .src(ip("10.66.66.66"), 55_548)
                                .dst(ip("172.16.0.99"), p as u16)
                                .proto(Protocol::TCP)
                                .volume(1, 44)
                                .build(),
                        );
                    }
                }
            }
        }
        (flows, span)
    }

    #[test]
    fn quiet_trace_raises_no_alarm() {
        let (flows, span) = trace(16, 60_000, None, false);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let alarms = det.detect(&flows, span);
        assert!(
            alarms.is_empty(),
            "false alarms: {:?}",
            alarms.iter().map(|a| a.describe()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn port_scan_interval_flagged_with_scanner_hint() {
        let (flows, span) = trace(16, 60_000, Some(11), false);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let alarms = det.detect(&flows, span);
        assert!(!alarms.is_empty(), "scan not detected");
        let hit = alarms
            .iter()
            .find(|a| a.window.from_ms == 11 * 60_000)
            .expect("wrong interval flagged");
        assert!(
            hit.hints.iter().any(|h| *h == FeatureItem::src_ip(ip("10.66.66.66"))
                || *h == FeatureItem::dst_ip(ip("172.16.0.99"))
                || *h == FeatureItem::src_port(55_548)),
            "no useful hint: {:?}",
            hit.hints
        );
    }

    #[test]
    fn udp_flood_flagged_via_volume_dims() {
        let (flows, span) = trace(16, 60_000, Some(9), true);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let alarms = det.detect(&flows, span);
        assert!(
            alarms.iter().any(|a| a.window.from_ms == 9 * 60_000),
            "flood interval not flagged"
        );
    }

    #[test]
    fn too_few_intervals_returns_nothing() {
        let (flows, span) = trace(4, 60_000, Some(3), false);
        let mut det = PcaDetector::with_defaults();
        let (alarms, diag) = det.detect_series(&IntervalSeries::cut(&flows, span, 60_000));
        assert!(alarms.is_empty());
        assert!(diag.is_none());
    }

    #[test]
    fn diagnostics_expose_spe_and_limit() {
        let (flows, span) = trace(16, 60_000, Some(11), false);
        let mut det = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
        let (_, diag) = det.detect_series(&IntervalSeries::cut(&flows, span, 60_000));
        let diag = diag.expect("diagnostics");
        assert_eq!(diag.spe.len(), 16);
        assert!(diag.q_limit.is_finite() && diag.q_limit > 0.0);
        assert!(diag.normal_components >= 1 && diag.normal_components < DIMS);
        // The anomalous interval carries the max SPE.
        let max_idx =
            diag.spe.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 11);
    }

    #[test]
    fn sliding_pca_flags_scan_in_newest_interval_only() {
        let (flows, span) = trace(16, 60_000, Some(12), false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut sliding = PcaSliding::new(config, 12);
        let mut fired: Vec<(usize, Alarm)> = Vec::new();
        for (t, stat) in series.intervals.iter().enumerate() {
            if let Some(alarm) = sliding.push(stat) {
                fired.push((t, alarm));
            }
        }
        assert!(
            fired.iter().any(|(t, _)| *t == 12),
            "scan interval not flagged: {:?}",
            fired.iter().map(|(t, a)| (*t, a.describe())).collect::<Vec<_>>()
        );
        // Alarm ids are assigned by the sliding adapter, in order.
        for (i, (_, alarm)) in fired.iter().enumerate() {
            assert_eq!(alarm.id, i as u64);
        }
    }

    #[test]
    fn sliding_pca_is_quiet_on_benign_traffic() {
        let (flows, span) = trace(16, 60_000, None, false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut sliding = PcaSliding::new(config, 12);
        let fired: Vec<Alarm> =
            series.intervals.iter().filter_map(|stat| sliding.push(stat)).collect();
        assert!(fired.is_empty(), "{:?}", fired.iter().map(|a| a.describe()).collect::<Vec<_>>());
    }

    #[test]
    fn incremental_matches_refit_alarms_and_diagnostics() {
        let (flows, span) = trace(24, 60_000, Some(17), false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut incremental = PcaSliding::with_mode(config, 12, PcaMode::Incremental);
        let mut refit = PcaSliding::with_mode(config, 12, PcaMode::Refit);
        assert_eq!(PcaSliding::new(config, 12).mode(), PcaMode::Incremental, "default mode");
        for stat in &series.intervals {
            let a = incremental.push(stat);
            let b = refit.push(stat);
            assert_eq!(
                a.as_ref().map(|x| x.window),
                b.as_ref().map(|x| x.window),
                "alarm disagreement at {:?}: inc {:?} refit {:?}",
                stat.range,
                incremental.last_diag(),
                refit.last_diag()
            );
            match (incremental.last_diag(), refit.last_diag()) {
                (None, None) => {}
                (Some((spe_a, lim_a)), Some((spe_b, lim_b))) => {
                    assert!(
                        (spe_a - spe_b).abs() <= 1e-6 * spe_b.abs().max(1.0),
                        "SPE drift: {spe_a} vs {spe_b}"
                    );
                    assert!(
                        lim_a == lim_b
                            || (lim_a - lim_b).abs() <= 1e-6 * lim_b.abs().max(1.0)
                            || (lim_a.is_infinite() && lim_b.is_infinite()),
                        "limit drift: {lim_a} vs {lim_b}"
                    );
                }
                (a, b) => panic!("diagnostics availability diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn constant_traffic_window_leaves_both_modes_unscored() {
        // Twelve identical (empty) intervals then one busy interval:
        // the newest interval's training set is constant, so neither
        // mode can score it — last_diag must be None in BOTH, even
        // though the refit's batch pass models the older intervals
        // (their training sets include the busy row).
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut incremental = PcaSliding::with_mode(config, 12, PcaMode::Incremental);
        let mut refit = PcaSliding::with_mode(config, 12, PcaMode::Refit);
        for t in 0..12u64 {
            let stat = IntervalStat::empty(TimeRange::window_at(t, 0, 60_000));
            incremental.push(&stat);
            refit.push(&stat);
        }
        let mut busy = IntervalStat::empty(TimeRange::window_at(12, 0, 60_000));
        for i in 0..200u32 {
            busy.add(
                &FlowRecord::builder()
                    .time(12 * 60_000 + i as u64, 12 * 60_000 + i as u64 + 10)
                    .src(Ipv4Addr::from(0x0A00_0000 + i), 1_024 + i as u16)
                    .dst(ip("172.16.0.1"), 80)
                    .volume(2, 900)
                    .build(),
            );
        }
        let a = incremental.push(&busy);
        let b = refit.push(&busy);
        assert_eq!(a, None);
        assert_eq!(b, None);
        assert_eq!(incremental.last_diag(), None, "constant training set is unscorable");
        assert_eq!(refit.last_diag(), None, "refit must agree the newest was unscorable");
    }

    #[test]
    fn incremental_moment_rebuild_does_not_change_results() {
        // Force a rebuild (and its re-anchoring) every 4 evictions —
        // far below the production cadence — and check the incremental
        // path still tracks the refit reference across dozens of
        // rebuild boundaries. Guards the stale-anchor hazard: scoring
        // or folding an observation with a pre-rebuild anchor corrupts
        // the moments for the next thousand intervals.
        let (flows, span) = trace(20, 60_000, Some(15), false);
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let config = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let mut det = PcaSliding::new(config, 10);
        det.set_rebuild_every(4);
        let mut refit = PcaSliding::with_mode(config, 10, PcaMode::Refit);
        let mut fired = Vec::new();
        // Cycle the same series several times; state keeps sliding.
        for _ in 0..3 {
            for stat in &series.intervals {
                if let Some(alarm) = det.push(stat) {
                    fired.push(alarm);
                }
                refit.push(stat);
                match (det.last_diag(), refit.last_diag()) {
                    (Some((spe_a, _)), Some((spe_b, _))) => {
                        assert!(
                            (spe_a - spe_b).abs() <= 1e-6 * spe_b.abs().max(1.0),
                            "SPE drift across a rebuild at {:?}: {spe_a} vs {spe_b}",
                            stat.range
                        );
                    }
                    (a, b) => assert_eq!(a.is_some(), b.is_some(), "availability diverged"),
                }
            }
        }
        assert!(!fired.is_empty(), "repeated scans must keep alarming");
        for (i, alarm) in fired.iter().enumerate() {
            assert_eq!(alarm.id, i as u64, "sliding adapter assigns ids in order");
        }
    }

    #[test]
    fn q_alpha_monotone_in_confidence() {
        let eig = [0.5, 0.3, 0.1];
        assert!(q_alpha(&eig, 3.0) > q_alpha(&eig, 1.645));
    }

    #[test]
    fn q_alpha_infinite_when_no_residual_variance() {
        assert!(q_alpha(&[0.0, 0.0], 2.0).is_infinite());
        assert!(q_alpha(&[], 2.0).is_infinite());
    }

    #[test]
    fn observation_has_seven_dims() {
        let stat = IntervalStat::empty(TimeRange::new(0, 1));
        assert_eq!(observation(&stat).len(), DIMS);
    }

    #[test]
    fn guess_kind_scan_vs_flood() {
        let mut r = [0.0f64; DIMS];
        r[3] = 2.0; // dstPort entropy up
        r[1] = -1.0;
        assert_eq!(guess_kind(&r), "port scan");
        let mut r2 = [0.0f64; DIMS];
        r2[1] = 2.0;
        r2[3] = -0.5;
        assert_eq!(guess_kind(&r2), "network scan");
    }
}

//! A minimal multiply-mix hasher for the per-record hot path.
//!
//! [`ValueDist`](crate::interval::ValueDist) performs four hash-map
//! entry operations per ingested flow record; with the default SipHash
//! those four hashes are the single largest per-record cost in the
//! streaming windowing layer. Feature values are plain `u32`s under no
//! adversarial control worth paying SipHash for (a flood of colliding
//! feature values is itself the anomaly the pipeline exists to
//! report), so distributions use this FxHash-style multiply-mix
//! instead: one multiply plus an xorshift finalizer, ~5 ns per
//! operation.
//!
//! Not DoS-hardened — keep it for small-key counting maps on hot
//! paths, not for maps keyed by attacker-supplied byte strings.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot multiply-mix hasher (see the [module docs](self)).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Xorshift-multiply finalizer: spreads the multiply's
        // high-bit entropy back into the low bits hashbrown uses for
        // bucket selection.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::BuildHasher;

    fn hash_u32(v: u32) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        h.write_u32(v);
        h.finish()
    }

    #[test]
    fn sequential_keys_spread_across_low_bits() {
        // Hashbrown indexes buckets with the LOW bits: sequential port
        // numbers (the classic scan workload) must not cluster there.
        let mut low7 = HashSet::new();
        for v in 0..1_024u32 {
            low7.insert(hash_u32(v) & 0x7f);
        }
        assert_eq!(low7.len(), 128, "all 128 low-7-bit patterns must occur");
    }

    #[test]
    fn equal_keys_hash_equal_and_distinct_keys_rarely_collide() {
        assert_eq!(hash_u32(0xDEAD_BEEF), hash_u32(0xDEAD_BEEF));
        let mut seen = HashSet::new();
        for v in (0..100_000u32).step_by(7) {
            seen.insert(hash_u32(v));
        }
        assert_eq!(seen.len(), (0..100_000u32).step_by(7).count(), "no 64-bit collisions");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_padding_free_input() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}

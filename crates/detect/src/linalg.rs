//! Minimal dense linear algebra for the PCA detector.
//!
//! The subspace method needs exactly three operations: column
//! standardization, a covariance matrix, and the eigendecomposition of a
//! small symmetric matrix. A cyclic Jacobi sweep covers the last one with
//! guaranteed convergence for symmetric input — no external linear
//! algebra crate required (DESIGN.md §2).

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One column, copied out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Z-score each column in place; returns per-column `(mean, std)`.
    ///
    /// Columns with zero variance are centered only (std reported as 0),
    /// so constant dimensions cannot poison the covariance.
    pub fn standardize_columns(&mut self) -> Vec<(f64, f64)> {
        let n = self.rows.max(1) as f64;
        let mut stats = Vec::with_capacity(self.cols);
        for c in 0..self.cols {
            let mean = (0..self.rows).map(|r| self.get(r, c)).sum::<f64>() / n;
            let var = (0..self.rows).map(|r| (self.get(r, c) - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt();
            for r in 0..self.rows {
                let z =
                    if std > 1e-12 { (self.get(r, c) - mean) / std } else { self.get(r, c) - mean };
                self.set(r, c, z);
            }
            stats.push((mean, if std > 1e-12 { std } else { 0.0 }));
        }
        stats
    }

    /// Sample covariance of the (already centered) columns:
    /// `X^T X / (rows - 1)`.
    pub fn covariance(&self) -> Matrix {
        let denom = (self.rows.max(2) - 1) as f64;
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                let v = s / denom;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        cov
    }

    /// Frobenius norm of the off-diagonal part.
    fn offdiag_norm(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    s += self.get(r, c).powi(2);
                }
            }
        }
        s.sqrt()
    }
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvector `i` is column `i` of the returned matrix.
///
/// # Panics
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(a.rows(), a.cols(), "jacobi needs a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 64;
    const TOL: f64 = 1e-12;

    for _ in 0..MAX_SWEEPS {
        if m.offdiag_norm() < TOL {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, theta) on both sides.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let eig: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| eig[j].partial_cmp(&eig[i]).unwrap_or(std::cmp::Ordering::Equal));

    let values: Vec<f64> = order.iter().map(|&i| eig[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_c, v.get(r, old_c));
        }
    }
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        approx(c.get(0, 0), 19.0);
        approx(c.get(0, 1), 22.0);
        approx(c.get(1, 0), 43.0);
        approx(c.get(1, 1), 50.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn standardize_makes_zero_mean_unit_var() {
        let mut m = Matrix::from_rows(&[vec![1.0], vec![3.0], vec![5.0], vec![7.0]]);
        let stats = m.standardize_columns();
        approx(stats[0].0, 4.0);
        let mean: f64 = (0..4).map(|r| m.get(r, 0)).sum::<f64>() / 4.0;
        approx(mean, 0.0);
        let var: f64 = (0..4).map(|r| m.get(r, 0).powi(2)).sum::<f64>() / 4.0;
        approx(var, 1.0);
    }

    #[test]
    fn standardize_handles_constant_column() {
        let mut m = Matrix::from_rows(&[vec![2.0, 1.0], vec![2.0, 3.0]]);
        let stats = m.standardize_columns();
        assert_eq!(stats[0].1, 0.0);
        approx(m.get(0, 0), 0.0);
        approx(m.get(1, 0), 0.0);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let mut m =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0], vec![4.0, 8.0]]);
        // Center only (std irrelevant here): covariance off-diagonal != 0.
        m.standardize_columns();
        let cov = m.covariance();
        assert!(cov.get(0, 1) > 0.99, "correlated columns: {}", cov.get(0, 1));
        approx(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, _) = jacobi_eigen(&m);
        approx(vals[0], 3.0);
        approx(vals[1], 1.0);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = jacobi_eigen(&m);
        approx(vals[0], 3.0);
        approx(vals[1], 1.0);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = vecs.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v0[0] - v0[1]).abs() < 1e-9 || (v0[0] + v0[1]).abs() < 1e-9);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        // A = V diag(w) V^T must reproduce the input.
        let a = Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.2], vec![0.5, 0.2, 1.0]]);
        let (vals, vecs) = jacobi_eigen(&a);
        let mut d = Matrix::zeros(3, 3);
        for (i, &v) in vals.iter().enumerate() {
            d.set(i, i, v);
        }
        let rebuilt = vecs.matmul(&d).matmul(&vecs.transpose());
        for r in 0..3 {
            for c in 0..3 {
                assert!((rebuilt.get(r, c) - a.get(r, c)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.5, 0.1, 0.0],
            vec![0.5, 1.0, 0.3, 0.2],
            vec![0.1, 0.3, 4.0, 0.6],
            vec![0.0, 0.2, 0.6, 0.5],
        ]);
        let (_, vecs) = jacobi_eigen(&a);
        let gram = vecs.transpose().matmul(&vecs);
        for r in 0..4 {
            for c in 0..4 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((gram.get(r, c) - expect).abs() < 1e-8, "gram[{r}][{c}]");
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 5.0, 0.0], vec![0.0, 0.0, 3.0]]);
        let (vals, _) = jacobi_eigen(&a);
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
        approx(vals[0], 5.0);
        approx(vals[2], 1.0);
    }
}

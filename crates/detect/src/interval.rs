//! Per-interval traffic summaries.
//!
//! Both detectors consume the same shape of input: the trace cut into
//! fixed-width intervals, each summarized by volume counters and by the
//! distribution of every mining feature (srcIP, dstIP, srcPort, dstPort).
//! [`ValueDist`] is that distribution; [`IntervalSeries`] is the cut.

use std::collections::HashMap;

use anomex_flow::feature::Feature;
use anomex_flow::record::FlowRecord;
use anomex_flow::store::TimeRange;

use crate::fasthash::FxBuildHasher;

/// Empirical distribution of one feature over one interval: raw feature
/// value (`FeatureValue::raw`) → flow count.
///
/// Four of these are updated per ingested record, so the map hashes
/// with [`crate::fasthash`] rather than SipHash — the values are plain
/// feature words, not attacker-supplied keys worth DoS-hardening at
/// 4× the per-record cost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValueDist {
    counts: HashMap<u32, u64, FxBuildHasher>,
    total: u64,
}

impl ValueDist {
    /// Empty distribution.
    pub fn new() -> ValueDist {
        ValueDist::default()
    }

    /// Count one observation of `value` with weight `w`.
    pub fn add(&mut self, value: u32, w: u64) {
        *self.counts.entry(value).or_default() += w;
        self.total += w;
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Weight of one value.
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Iterate `(value, count)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Sample entropy `H = -Σ p_i log2 p_i` in bits.
    ///
    /// Returns 0 for empty and single-value distributions.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        let mut h = 0.0;
        for &c in self.counts.values() {
            if c > 0 {
                let p = c as f64 / total;
                h -= p * p.log2();
            }
        }
        h.max(0.0)
    }

    /// Entropy normalized into `[0, 1]` by `log2(distinct)` — the form
    /// Lakhina et al. use so dimensions are comparable.
    pub fn normalized_entropy(&self) -> f64 {
        let n = self.distinct();
        if n <= 1 {
            return 0.0;
        }
        self.entropy() / (n as f64).log2()
    }

    /// The `n` heaviest values, descending by weight (ties by value for
    /// determinism).
    pub fn top_n(&self, n: usize) -> Vec<(u32, u64)> {
        let mut all: Vec<(u32, u64)> = self.iter().collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Probability of one value (0 when the distribution is empty).
    pub fn probability(&self, value: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fold another distribution into this one (counts add).
    pub fn merge(&mut self, other: &ValueDist) {
        for (&value, &count) in &other.counts {
            *self.counts.entry(value).or_default() += count;
        }
        self.total += other.total;
    }
}

/// One interval's summary: volumes plus the four feature distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalStat {
    /// The interval.
    pub range: TimeRange,
    /// Flow records observed (start falling in the interval).
    pub flows: u64,
    /// Packet total.
    pub packets: u64,
    /// Byte total.
    pub bytes: u64,
    /// Distribution per mining feature, indexed like [`Feature::MINING`].
    pub dists: [ValueDist; 4],
}

impl IntervalStat {
    /// Empty summary of `range`.
    pub fn empty(range: TimeRange) -> IntervalStat {
        IntervalStat {
            range,
            flows: 0,
            packets: 0,
            bytes: 0,
            dists: [ValueDist::new(), ValueDist::new(), ValueDist::new(), ValueDist::new()],
        }
    }

    /// Account one record (flow-weighted distributions, as in the paper's
    /// detectors; packet weighting is a [`ValueDist::add`] call away).
    pub fn add(&mut self, r: &FlowRecord) {
        self.flows += 1;
        self.packets += r.packets;
        self.bytes += r.bytes;
        for (i, feature) in Feature::MINING.iter().enumerate() {
            self.dists[i].add(r.feature(*feature).raw(), 1);
        }
    }

    /// Fold another shard's summary of the **same** interval into this
    /// one — how the window manager combines per-shard partials into
    /// the full interval summary without re-scanning any flow.
    pub fn merge(&mut self, other: &IntervalStat) {
        debug_assert_eq!(self.range, other.range, "merging different intervals");
        self.flows += other.flows;
        self.packets += other.packets;
        self.bytes += other.bytes;
        for (mine, theirs) in self.dists.iter_mut().zip(&other.dists) {
            mine.merge(theirs);
        }
    }

    /// The distribution of `feature`, if it is a mining feature.
    pub fn dist(&self, feature: Feature) -> Option<&ValueDist> {
        Feature::MINING.iter().position(|&f| f == feature).map(|i| &self.dists[i])
    }

    /// Entropy vector over the four mining features (normalized).
    pub fn entropy_vector(&self) -> [f64; 4] {
        [
            self.dists[0].normalized_entropy(),
            self.dists[1].normalized_entropy(),
            self.dists[2].normalized_entropy(),
            self.dists[3].normalized_entropy(),
        ]
    }
}

/// A trace cut into fixed-width intervals.
#[derive(Debug, Clone)]
pub struct IntervalSeries {
    /// Interval width, milliseconds.
    pub width_ms: u64,
    /// Per-interval summaries, in time order, gapless across the span.
    pub intervals: Vec<IntervalStat>,
}

impl IntervalSeries {
    /// Cut `flows` into `width_ms` intervals across `span`.
    ///
    /// Records are assigned to the interval containing their start
    /// timestamp — the NetFlow convention for 5-minute bins. Records
    /// outside `span` are ignored.
    ///
    /// # Panics
    /// Panics if `width_ms == 0`.
    pub fn cut(flows: &[FlowRecord], span: TimeRange, width_ms: u64) -> IntervalSeries {
        assert!(width_ms > 0, "interval width must be positive");
        let ranges = span.intervals(width_ms);
        let mut intervals: Vec<IntervalStat> =
            ranges.iter().map(|r| IntervalStat::empty(*r)).collect();
        if intervals.is_empty() {
            return IntervalSeries { width_ms, intervals };
        }
        let base = span.from_ms;
        for f in flows {
            if f.start_ms < base {
                continue;
            }
            let idx = ((f.start_ms - base) / width_ms) as usize;
            if let Some(slot) = intervals.get_mut(idx) {
                slot.add(f);
            }
        }
        IntervalSeries { width_ms, intervals }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when the series holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::record::FlowRecord;
    use std::net::Ipv4Addr;

    fn flow(start: u64, src: &str, dport: u16, packets: u64) -> FlowRecord {
        FlowRecord::builder()
            .time(start, start + 100)
            .src(src.parse::<Ipv4Addr>().unwrap(), 4000)
            .dst("172.16.0.1".parse().unwrap(), dport)
            .volume(packets, packets * 100)
            .build()
    }

    #[test]
    fn entropy_of_uniform_is_log2_n() {
        let mut d = ValueDist::new();
        for v in 0..8 {
            d.add(v, 5);
        }
        assert!((d.entropy() - 3.0).abs() < 1e-12);
        assert!((d.normalized_entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        let mut d = ValueDist::new();
        d.add(42, 1000);
        assert_eq!(d.entropy(), 0.0);
        assert_eq!(d.normalized_entropy(), 0.0);
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(ValueDist::new().entropy(), 0.0);
    }

    #[test]
    fn entropy_decreases_with_concentration() {
        let mut flat = ValueDist::new();
        let mut spiky = ValueDist::new();
        for v in 0..100 {
            flat.add(v, 10);
            spiky.add(v, 1);
        }
        spiky.add(7, 900);
        assert!(spiky.normalized_entropy() < flat.normalized_entropy());
    }

    #[test]
    fn top_n_orders_by_weight_then_value() {
        let mut d = ValueDist::new();
        d.add(5, 10);
        d.add(3, 10);
        d.add(9, 50);
        assert_eq!(d.top_n(2), vec![(9, 50), (3, 10)]);
    }

    #[test]
    fn probability_sums_to_one() {
        let mut d = ValueDist::new();
        d.add(1, 3);
        d.add(2, 7);
        let sum: f64 = d.iter().map(|(v, _)| d.probability(v)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_assigns_by_start_time() {
        let flows = vec![
            flow(0, "10.0.0.1", 80, 2),
            flow(59_999, "10.0.0.2", 80, 2),
            flow(60_000, "10.0.0.3", 53, 4),
        ];
        let series = IntervalSeries::cut(&flows, TimeRange::new(0, 120_000), 60_000);
        assert_eq!(series.len(), 2);
        assert_eq!(series.intervals[0].flows, 2);
        assert_eq!(series.intervals[1].flows, 1);
        assert_eq!(series.intervals[1].packets, 4);
    }

    #[test]
    fn cut_ignores_out_of_span_records() {
        let flows = vec![flow(500_000, "10.0.0.1", 80, 1)];
        let series = IntervalSeries::cut(&flows, TimeRange::new(0, 120_000), 60_000);
        assert_eq!(series.intervals.iter().map(|i| i.flows).sum::<u64>(), 0);
    }

    #[test]
    fn interval_stat_tracks_all_four_features() {
        let mut stat = IntervalStat::empty(TimeRange::new(0, 1000));
        stat.add(&flow(10, "10.0.0.1", 80, 3));
        stat.add(&flow(20, "10.0.0.2", 80, 3));
        assert_eq!(stat.dist(Feature::SrcIp).unwrap().distinct(), 2);
        assert_eq!(stat.dist(Feature::DstPort).unwrap().distinct(), 1);
        assert_eq!(stat.dist(Feature::Proto), None, "proto is not a mining feature");
    }

    #[test]
    fn merged_shard_stats_equal_unsharded_stat() {
        let flows: Vec<FlowRecord> = (0..40)
            .map(|i| flow(i, &format!("10.0.0.{}", i % 7), 80 + (i % 3) as u16, 2))
            .collect();
        let range = TimeRange::new(0, 1000);
        let mut whole = IntervalStat::empty(range);
        let mut shards = [IntervalStat::empty(range), IntervalStat::empty(range)];
        for f in &flows {
            whole.add(f);
            shards[(f.key().stable_hash() % 2) as usize].add(f);
        }
        let mut merged = shards[0].clone();
        merged.merge(&shards[1]);
        assert_eq!(merged, whole);
    }

    #[test]
    fn entropy_vector_reacts_to_port_scan_shape() {
        // Scan: one src, one dst, many dst ports -> dstPort entropy up.
        let mut normal = IntervalStat::empty(TimeRange::new(0, 1000));
        let mut scan = IntervalStat::empty(TimeRange::new(0, 1000));
        for i in 0..200u16 {
            normal.add(&flow(1, &format!("10.0.{}.{}", i % 4, i % 50), 80, 1));
            scan.add(&flow(1, "10.0.0.9", i + 1, 1));
        }
        let n = normal.entropy_vector();
        let s = scan.entropy_vector();
        assert!(s[3] > n[3], "dstPort entropy should spike: {s:?} vs {n:?}");
        assert!(s[0] < n[0], "srcIP entropy should collapse");
    }
}

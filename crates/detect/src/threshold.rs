//! Adaptive-threshold state: `mean + sigma · std` over a detector's
//! trailing score history.
//!
//! Two interchangeable representations of the same statistic:
//!
//! - [`ThresholdMode::Exact`] keeps every score and recomputes the
//!   two-pass mean/variance on demand — bit-identical with the original
//!   batch detector's arithmetic, at the cost of one `f64` per interval
//!   forever (~1 MiB per decade of 5-minute intervals, the ROADMAP's
//!   `KlOnline` history item).
//! - [`ThresholdMode::Welford`] folds each score into Welford running
//!   moments — O(1) memory regardless of stream length, mathematically
//!   the same mean and population variance, different float rounding
//!   (agreement is within ~1e-12 relative; proptests in
//!   `tests/detector_equivalence.rs` pin it down).
//!
//! Welford is the default: boundedness wins for long-running
//! deployments. Exact mode stays available for byte-for-byte
//! reproduction of historical batch runs.

use serde::{Deserialize, Serialize};

/// Which representation a [`ThresholdState`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ThresholdMode {
    /// Full score history; two-pass mean/variance — bit-identical with
    /// the pre-refactor batch detector, unbounded memory.
    Exact,
    /// Welford running moments — O(1) memory, rounding-level deviation.
    #[default]
    Welford,
}

/// Running state of one adaptive threshold.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdState {
    /// Every un-alarmed score, in arrival order.
    Exact(Vec<f64>),
    /// Welford accumulator: count, running mean, sum of squared
    /// deviations (`M2`).
    Welford {
        /// Scores folded in so far.
        n: u64,
        /// Running mean.
        mean: f64,
        /// Running sum of squared deviations from the mean.
        m2: f64,
    },
}

impl ThresholdState {
    /// Fresh state for `mode`.
    pub fn new(mode: ThresholdMode) -> ThresholdState {
        match mode {
            ThresholdMode::Exact => ThresholdState::Exact(Vec::new()),
            ThresholdMode::Welford => ThresholdState::Welford { n: 0, mean: 0.0, m2: 0.0 },
        }
    }

    /// Fold one un-alarmed score into the history.
    pub fn push(&mut self, score: f64) {
        match self {
            ThresholdState::Exact(history) => history.push(score),
            ThresholdState::Welford { n, mean, m2 } => {
                *n += 1;
                let delta = score - *mean;
                *mean += delta / *n as f64;
                *m2 += delta * (score - *mean);
            }
        }
    }

    /// Number of scores folded in.
    pub fn len(&self) -> u64 {
        match self {
            ThresholdState::Exact(history) => history.len() as u64,
            ThresholdState::Welford { n, .. } => *n,
        }
    }

    /// True before any score arrived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `f64`s of history physically retained — what actually grows.
    /// Exact mode retains one per score; Welford retains three, total.
    pub fn retained(&self) -> usize {
        match self {
            ThresholdState::Exact(history) => history.len(),
            ThresholdState::Welford { .. } => 3,
        }
    }

    /// `mean + sigma * std` over the history, floored at `floor`
    /// (`floor.max(1e-6)` when no history exists yet).
    pub fn threshold(&self, sigma: f64, floor: f64) -> f64 {
        match self {
            ThresholdState::Exact(history) => {
                // The original two-pass formula, expression for
                // expression: bit-identical with the seed detector.
                if history.is_empty() {
                    return floor.max(1e-6);
                }
                let n = history.len() as f64;
                let mean = history.iter().sum::<f64>() / n;
                let var = history.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                (mean + sigma * var.sqrt()).max(floor)
            }
            ThresholdState::Welford { n, mean, m2 } => {
                if *n == 0 {
                    return floor.max(1e-6);
                }
                let var = (m2 / *n as f64).max(0.0);
                (mean + sigma * var.sqrt()).max(floor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_floors() {
        for mode in [ThresholdMode::Exact, ThresholdMode::Welford] {
            let state = ThresholdState::new(mode);
            assert!(state.is_empty());
            assert_eq!(state.threshold(3.0, 0.05), 0.05);
            assert_eq!(state.threshold(3.0, 0.0), 1e-6);
        }
    }

    #[test]
    fn modes_agree_within_tolerance() {
        let scores = [0.5, 0.61, 0.43, 0.555, 0.467, 0.012, 3.4, 0.5001];
        let mut exact = ThresholdState::new(ThresholdMode::Exact);
        let mut welford = ThresholdState::new(ThresholdMode::Welford);
        for (i, &s) in scores.iter().enumerate() {
            exact.push(s);
            welford.push(s);
            let te = exact.threshold(3.0, 0.05);
            let tw = welford.threshold(3.0, 0.05);
            assert!(
                (te - tw).abs() <= 1e-9 * te.abs().max(1.0),
                "after {} scores: exact {te} vs welford {tw}",
                i + 1
            );
        }
        assert_eq!(exact.len(), welford.len());
    }

    #[test]
    fn welford_memory_is_constant() {
        let mut state = ThresholdState::new(ThresholdMode::Welford);
        for i in 0..100_000 {
            state.push((i % 17) as f64 * 0.01);
        }
        assert_eq!(state.retained(), 3, "Welford must not grow");
        let mut exact = ThresholdState::new(ThresholdMode::Exact);
        for i in 0..1_000 {
            exact.push(i as f64);
        }
        assert_eq!(exact.retained(), 1_000, "Exact retains everything");
    }

    #[test]
    fn exact_matches_two_pass_formula() {
        let history = [0.5, 0.6, 0.4, 0.55, 0.45];
        let mut state = ThresholdState::new(ThresholdMode::Exact);
        for &x in &history {
            state.push(x);
        }
        let n = history.len() as f64;
        let mean = history.iter().sum::<f64>() / n;
        let var = history.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let expect = (mean + 3.0 * var.sqrt()).max(0.05);
        assert_eq!(state.threshold(3.0, 0.05), expect, "must be the seed formula bit-for-bit");
    }

    #[test]
    fn threshold_tracks_noise_level() {
        for mode in [ThresholdMode::Exact, ThresholdMode::Welford] {
            let mut noisy = ThresholdState::new(mode);
            let mut quiet = ThresholdState::new(mode);
            for &x in &[0.5, 0.6, 0.4, 0.55, 0.45] {
                noisy.push(x);
            }
            for &x in &[0.01, 0.02, 0.01, 0.015, 0.012] {
                quiet.push(x);
            }
            assert!(noisy.threshold(3.0, 0.05) > quiet.threshold(3.0, 0.05) * 5.0);
        }
    }

    #[test]
    fn mode_default_is_welford() {
        assert_eq!(ThresholdMode::default(), ThresholdMode::Welford);
    }

    #[test]
    fn mode_serde_roundtrip() {
        for mode in [ThresholdMode::Exact, ThresholdMode::Welford] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: ThresholdMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back);
        }
    }
}

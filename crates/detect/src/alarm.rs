//! The alarm interface between detectors and the extractor.
//!
//! The paper's system "reads from a database information about an alarm
//! (e.g., the time interval and the affected traffic features) and thus
//! can be integrated with any anomaly detection system that provides
//! these data". [`Alarm`] is exactly that record: a time interval plus
//! fine-grained feature meta-data ([`FeatureItem`]s), possibly incomplete
//! — which is the whole reason extraction exists.

use anomex_flow::feature::FeatureItem;
use anomex_flow::store::TimeRange;
use serde::{Deserialize, Serialize};

/// How confident the detector is / how severe the event looks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: borderline deviation.
    Low,
    /// Clear statistical deviation.
    Medium,
    /// Large deviation, likely operationally relevant.
    High,
}

/// One detector alarm: the extraction input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Stable identifier within a run (detector-assigned).
    pub id: u64,
    /// Name of the detector that raised it (`"kl"`, `"entropy-pca"`, …).
    pub detector: String,
    /// The flagged time interval.
    pub window: TimeRange,
    /// Fine-grained meta-data: affected feature values. May cover only
    /// part of the anomaly (the paper's §2: meta-data "can miss part of
    /// an anomaly or may include a large number of false-positive flows").
    pub hints: Vec<FeatureItem>,
    /// The detector's label guess, free-form ("port scan", "DoS", …).
    pub kind_hint: Option<String>,
    /// Detection score (detector-specific scale: KL bits, Q-statistic…).
    pub score: f64,
    /// Coarse severity derived from the score.
    pub severity: Severity,
}

impl Alarm {
    /// Build an alarm with the minimum required fields.
    pub fn new(id: u64, detector: impl Into<String>, window: TimeRange) -> Alarm {
        Alarm {
            id,
            detector: detector.into(),
            window,
            hints: Vec::new(),
            kind_hint: None,
            score: 0.0,
            severity: Severity::Medium,
        }
    }

    /// Attach meta-data hints (builder style).
    pub fn with_hints(mut self, hints: Vec<FeatureItem>) -> Alarm {
        self.hints = hints;
        self
    }

    /// Attach a kind guess (builder style).
    pub fn with_kind(mut self, kind: impl Into<String>) -> Alarm {
        self.kind_hint = Some(kind.into());
        self
    }

    /// Attach a score and derive severity from `(score / alarm_threshold)`.
    pub fn with_score(mut self, score: f64, threshold: f64) -> Alarm {
        self.score = score;
        let ratio = if threshold > 0.0 { score / threshold } else { f64::INFINITY };
        self.severity = if ratio >= 4.0 {
            Severity::High
        } else if ratio >= 1.5 {
            Severity::Medium
        } else {
            Severity::Low
        };
        self
    }

    /// One-line rendering for logs and the console.
    pub fn describe(&self) -> String {
        let hints = if self.hints.is_empty() {
            "no hints".to_string()
        } else {
            self.hints.iter().map(|h| h.to_string()).collect::<Vec<_>>().join(", ")
        };
        format!(
            "alarm #{} [{}] {:?} window {}..{} score {:.3}: {} ({})",
            self.id,
            self.detector,
            self.severity,
            self.window.from_ms,
            self.window.to_ms,
            self.score,
            hints,
            self.kind_hint.as_deref().unwrap_or("unclassified"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn severity_from_score_ratio() {
        let w = TimeRange::new(0, 1000);
        assert_eq!(Alarm::new(1, "kl", w).with_score(10.0, 2.0).severity, Severity::High);
        assert_eq!(Alarm::new(1, "kl", w).with_score(3.5, 2.0).severity, Severity::Medium);
        assert_eq!(Alarm::new(1, "kl", w).with_score(2.1, 2.0).severity, Severity::Low);
    }

    #[test]
    fn zero_threshold_is_high() {
        let a = Alarm::new(1, "kl", TimeRange::new(0, 1)).with_score(0.5, 0.0);
        assert_eq!(a.severity, Severity::High);
    }

    #[test]
    fn describe_includes_hints_and_kind() {
        let a = Alarm::new(7, "entropy-pca", TimeRange::new(0, 300_000))
            .with_hints(vec![FeatureItem::src_ip(ip("10.0.0.1")), FeatureItem::dst_port(80)])
            .with_kind("port scan");
        let d = a.describe();
        assert!(d.contains("srcIP=10.0.0.1"), "{d}");
        assert!(d.contains("dstPort=80"), "{d}");
        assert!(d.contains("port scan"), "{d}");
    }

    #[test]
    fn roundtrips_through_json() {
        let a = Alarm::new(3, "kl", TimeRange::new(5, 10))
            .with_hints(vec![FeatureItem::dst_ip(ip("172.16.0.1"))])
            .with_score(9.0, 3.0);
        let s = serde_json::to_string(&a).unwrap();
        let b: Alarm = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Low < Severity::Medium && Severity::Medium < Severity::High);
    }
}

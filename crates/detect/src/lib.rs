//! # anomex-detect
//!
//! The two upstream anomaly detectors of the paper's evaluations, plus the
//! alarm interface the extractor consumes.
//!
//! - [`interval`] — traces cut into fixed intervals with per-feature
//!   value distributions and entropy.
//! - [`kl`] — the histogram/Kullback-Leibler detector of Kind et al.
//!   (IEEE TNSM 2009), used in the paper's SWITCH evaluation.
//! - [`linalg`] + [`pca`] — the entropy-PCA subspace method of Lakhina
//!   et al. (SIGCOMM 2005) with the Jackson–Mudholkar Q-limit: the
//!   published algorithm behind the commercial NetReflex detector of the
//!   paper's GEANT deployment.
//! - [`alarm`] — the detector-agnostic alarm record (time interval +
//!   fine-grained feature meta-data) that makes the extraction system
//!   integrable "with any anomaly detection system that provides these
//!   data".
//! - [`detector`] — the unified [`Detector`] trait both incremental
//!   states implement: intervals in, alarms out, batch detection as a
//!   thin driver over the same state.
//! - [`threshold`] — the adaptive-threshold state behind the KL
//!   detector: exact full-history or O(1) Welford running moments.
//!
//! Detectors are deliberately *not* perfect oracles: their meta-data can
//! be partial or polluted, which is exactly the regime the extraction
//! technique was designed for.
//!
//! ## Example
//!
//! ```
//! use anomex_detect::prelude::*;
//! use anomex_flow::prelude::*;
//!
//! // Eight quiet 1-minute intervals: no alarms.
//! let flows: Vec<FlowRecord> = (0..8 * 100u64)
//!     .map(|i| {
//!         FlowRecord::builder()
//!             .time(i * 600, i * 600 + 100)
//!             .src(std::net::Ipv4Addr::from(0x0A000000 + (i % 16) as u32), 1024)
//!             .dst(std::net::Ipv4Addr::from(0xAC100001), 80)
//!             .volume(2, 1000)
//!             .build()
//!     })
//!     .collect();
//! let mut detector = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
//! let alarms = detector.detect(&flows, TimeRange::new(0, 480_000));
//! assert!(alarms.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alarm;
pub mod detector;
pub mod fasthash;
pub mod interval;
pub mod kl;
pub mod linalg;
pub mod pca;
pub mod threshold;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::alarm::{Alarm, Severity};
    pub use crate::detector::Detector;
    pub use crate::interval::{IntervalSeries, IntervalStat, ValueDist};
    pub use crate::kl::{KlConfig, KlDetector, KlOnline, KlScore};
    pub use crate::linalg::{jacobi_eigen, Matrix};
    pub use crate::pca::{PcaConfig, PcaDetector, PcaDiagnostics, PcaMode, PcaSliding, DIMS};
    pub use crate::threshold::{ThresholdMode, ThresholdState};
}

pub use prelude::*;

//! The unified incremental-detector interface.
//!
//! Every detector in this crate is, at bottom, the same machine: closed
//! intervals go in one at a time, alarms come out. [`Detector`] names
//! that machine, the way `anomex_fim::Miner` names the mining engines —
//! batch detection is a thin driver over the incremental state
//! ([`Detector::detect_series`]), and the streaming layer can run any
//! number of detectors side by side without knowing their types
//! (`anomex-stream`'s detector registry builds on exactly this trait).
//!
//! The two in-tree implementations are [`KlOnline`](crate::kl::KlOnline)
//! (histogram/KL with an O(1) Welford threshold) and
//! [`PcaSliding`](crate::pca::PcaSliding) (entropy-PCA over a sliding
//! window with rank-one covariance update/downdate). A third-party
//! detector only needs this trait and [`Alarm`]'s shape — the paper's
//! "can be integrated with any anomaly detection system" premise as a
//! compiler-checked interface.

use crate::alarm::Alarm;
use crate::interval::{IntervalSeries, IntervalStat};

/// One incremental anomaly detector: intervals in, alarms out.
///
/// Implementations must be deterministic in the sequence of pushed
/// intervals — the streaming pipeline's replay guarantees depend on it.
/// Intervals must arrive in time order, gaps fed as empty
/// [`IntervalStat`]s (what `IntervalSeries::cut` produces for quiet
/// intervals).
pub trait Detector: Send {
    /// Stable detector name, used for alarm attribution ("kl",
    /// "entropy-pca", …).
    fn name(&self) -> &str;

    /// The detection-interval width this state expects, milliseconds.
    fn interval_ms(&self) -> u64;

    /// Feed the next closed interval; returns the alarms it raised
    /// (usually zero or one).
    fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm>;

    /// Batch detection as a driver over the incremental state: feed
    /// every interval of `series` in order, collect every alarm.
    fn detect_series(&mut self, series: &IntervalSeries) -> Vec<Alarm> {
        series.intervals.iter().flat_map(|stat| self.push(stat)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::store::TimeRange;

    /// A detector that alarms on every interval with ≥ `limit` flows.
    struct FlowCountDetector {
        limit: u64,
        next_id: u64,
    }

    impl Detector for FlowCountDetector {
        fn name(&self) -> &str {
            "flow-count"
        }

        fn interval_ms(&self) -> u64 {
            1_000
        }

        fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
            if stat.flows >= self.limit {
                let alarm = Alarm::new(self.next_id, self.name(), stat.range);
                self.next_id += 1;
                vec![alarm]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn detect_series_drives_push() {
        let mut det = FlowCountDetector { limit: 2, next_id: 0 };
        let mut series = IntervalSeries { width_ms: 1_000, intervals: Vec::new() };
        for t in 0..4u64 {
            let mut stat = IntervalStat::empty(TimeRange::new(t * 1_000, (t + 1) * 1_000));
            stat.flows = t; // 0, 1, 2, 3 flows
            series.intervals.push(stat);
        }
        let alarms = det.detect_series(&series);
        assert_eq!(alarms.len(), 2);
        assert_eq!(alarms[0].window.from_ms, 2_000);
        assert_eq!(alarms[1].window.from_ms, 3_000);
        assert_eq!(alarms[0].id + 1, alarms[1].id);
        assert_eq!(alarms[0].detector, "flow-count");
    }

    #[test]
    fn trait_is_object_safe_and_send() {
        let boxed: Box<dyn Detector + Send> = Box::new(FlowCountDetector { limit: 1, next_id: 0 });
        assert_eq!(boxed.name(), "flow-count");
        assert_eq!(boxed.interval_ms(), 1_000);
    }
}

//! Property tests for the detectors: entropy bounds, eigendecomposition
//! invariants, and detector sanity under arbitrary traffic.

use anomex_detect::prelude::*;
use anomex_flow::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(48))]

    /// 0 <= H <= log2(distinct); normalized entropy in [0, 1].
    #[test]
    fn entropy_bounds(values in prop::collection::vec((any::<u16>(), 1u64..1_000), 1..200)) {
        let mut d = ValueDist::new();
        for (v, w) in &values {
            d.add(*v as u32, *w);
        }
        let h = d.entropy();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (d.distinct() as f64).log2() + 1e-9, "H={h} distinct={}", d.distinct());
        let nh = d.normalized_entropy();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nh));
    }

    /// Entropy is permutation-invariant in the value labels.
    #[test]
    fn entropy_label_invariant(weights in prop::collection::vec(1u64..500, 2..50), shift in any::<u32>()) {
        let mut a = ValueDist::new();
        let mut b = ValueDist::new();
        for (i, w) in weights.iter().enumerate() {
            a.add(i as u32, *w);
            b.add((i as u32).wrapping_add(shift), *w);
        }
        prop_assert!((a.entropy() - b.entropy()).abs() < 1e-9);
    }

    /// Jacobi reconstructs arbitrary symmetric matrices and returns an
    /// orthonormal eigenbasis.
    #[test]
    fn jacobi_invariants(seed in prop::collection::vec(-10.0f64..10.0, 10)) {
        // Build a symmetric 4x4 from 10 free coefficients.
        let mut m = Matrix::zeros(4, 4);
        let mut it = seed.iter();
        for r in 0..4 {
            for c in r..4 {
                let v = *it.next().unwrap();
                m.set(r, c, v);
                m.set(c, r, v);
            }
        }
        let (vals, vecs) = jacobi_eigen(&m);
        // Sorted descending.
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        // V D V^T == M.
        let mut d = Matrix::zeros(4, 4);
        for (i, &v) in vals.iter().enumerate() {
            d.set(i, i, v);
        }
        let rebuilt = vecs.matmul(&d).matmul(&vecs.transpose());
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((rebuilt.get(r, c) - m.get(r, c)).abs() < 1e-7);
            }
        }
        // Orthonormal columns.
        let gram = vecs.transpose().matmul(&vecs);
        for r in 0..4 {
            for c in 0..4 {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((gram.get(r, c) - expect).abs() < 1e-7);
            }
        }
    }

    /// Alarms (if any) always point inside the analyzed span and carry
    /// well-formed metadata, for arbitrary traffic.
    #[test]
    fn alarms_stay_in_span(
        seed in any::<u64>(),
        n_flows in 50usize..400,
        intervals in 6u64..12,
    ) {
        let width = 60_000u64;
        let span = TimeRange::new(0, intervals * width);
        let mut rng = Xoshiro256::seeded(seed);
        let flows: Vec<FlowRecord> = (0..n_flows)
            .map(|_| {
                let start = rng.next_below(intervals * width);
                FlowRecord::builder()
                    .time(start, (start + rng.next_below(5_000)).min(span.to_ms))
                    .src(Ipv4Addr::from(0x0A00_0000 + rng.next_below(256) as u32), 1024 + rng.next_below(60_000) as u16)
                    .dst(Ipv4Addr::from(0xAC10_0000 + rng.next_below(16) as u32), if rng.next_f64() < 0.5 { 80 } else { 443 })
                    .volume(1 + rng.next_below(100), 64 + rng.next_below(100_000))
                    .build()
            })
            .collect();

        let mut kl = KlDetector::new(KlConfig { interval_ms: width, ..KlConfig::default() });
        let mut pca = PcaDetector::new(PcaConfig { interval_ms: width, min_intervals: 6, ..PcaConfig::default() });
        for alarm in kl.detect(&flows, span).into_iter().chain(pca.detect(&flows, span)) {
            prop_assert!(alarm.window.from_ms >= span.from_ms);
            prop_assert!(alarm.window.to_ms <= span.to_ms);
            prop_assert!(alarm.score >= 0.0);
            for hint in &alarm.hints {
                // Hints must be internally consistent (feature/value kinds).
                prop_assert!(FeatureItem::checked(hint.feature, hint.value).is_some());
            }
        }
    }

    /// The interval series conserves flow and packet counts.
    #[test]
    fn series_conserves_volume(
        seed in any::<u64>(),
        n_flows in 1usize..300,
    ) {
        let span = TimeRange::new(0, 600_000);
        let mut rng = Xoshiro256::seeded(seed);
        let flows: Vec<FlowRecord> = (0..n_flows)
            .map(|_| {
                let start = rng.next_below(600_000);
                FlowRecord::builder()
                    .time(start, start)
                    .src(Ipv4Addr::from(rng.next_below(u32::MAX as u64 + 1) as u32), 1)
                    .dst(Ipv4Addr::from(1u32), 2)
                    .volume(1 + rng.next_below(1_000), 64)
                    .build()
            })
            .collect();
        let series = IntervalSeries::cut(&flows, span, 60_000);
        let total_flows: u64 = series.intervals.iter().map(|i| i.flows).sum();
        let total_packets: u64 = series.intervals.iter().map(|i| i.packets).sum();
        prop_assert_eq!(total_flows, n_flows as u64);
        prop_assert_eq!(total_packets, flows.iter().map(|f| f.packets).sum::<u64>());
    }
}

/// End-to-end: both detectors flag a generated port scan embedded in
/// generated background, and the PCA meta-data names the victim or the
/// scanner.
#[test]
fn detectors_catch_generated_scan() {
    use anomex_gen::prelude::*;

    let width = 60_000u64;
    let intervals = 12u64;
    // Background across the whole window, scan confined to interval 9.
    let mut scenario = Scenario::new("det-e2e", 77, Backbone::Switch);
    scenario.background.duration_ms = intervals * width;
    scenario.background.flows = 12_000;
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.103.0.66".parse().unwrap(),
        "172.20.1.40".parse().unwrap(),
    );
    spec.flows = 4_000;
    spec.start_ms = 9 * width;
    spec.duration_ms = width;
    let built = scenario.with_anomaly(spec).build();

    let flows = built.store.snapshot();
    let span = TimeRange::new(0, intervals * width);

    let mut kl = KlDetector::new(KlConfig { interval_ms: width, ..KlConfig::default() });
    let kl_alarms = kl.detect(&flows, span);
    assert!(
        kl_alarms.iter().any(|a| a.window.contains(9 * width)),
        "KL missed the scan: {:?}",
        kl_alarms.iter().map(|a| a.describe()).collect::<Vec<_>>()
    );

    let mut pca = PcaDetector::new(PcaConfig { interval_ms: width, ..PcaConfig::default() });
    let pca_alarms = pca.detect(&flows, span);
    let hit =
        pca_alarms.iter().find(|a| a.window.contains(9 * width)).expect("PCA missed the scan");
    let scanner: std::net::Ipv4Addr = "10.103.0.66".parse().unwrap();
    let victim: std::net::Ipv4Addr = "172.20.1.40".parse().unwrap();
    assert!(
        hit.hints.iter().any(|h| *h == FeatureItem::src_ip(scanner)
            || *h == FeatureItem::dst_ip(victim)
            || *h == FeatureItem::src_port(55_548)),
        "PCA meta-data useless: {:?}",
        hit.hints
    );
}

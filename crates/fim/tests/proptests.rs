//! Property tests for the mining engine.
//!
//! The central invariant: Apriori, FP-Growth and Eclat are three
//! independent implementations that must produce *identical* output, and
//! that output must match a brute-force reference miner on small inputs.

use std::collections::HashMap;

use proptest::prelude::*;

use anomex_fim::prelude::*;
use anomex_fim::{closed_only, maximal_only};

/// Brute force: enumerate every itemset appearing in the data, count by
/// linear scan, keep those meeting the threshold.
fn brute_force(txs: &TransactionSet, threshold: u64) -> Vec<FrequentItemset> {
    let universe = txs.item_universe();
    let mut results: HashMap<Itemset, u64> = HashMap::new();
    // Enumerate subsets of each transaction (transactions are narrow here).
    for t in txs.transactions() {
        let items = t.items();
        let n = items.len();
        for mask in 1u32..(1 << n) {
            let subset: Itemset =
                (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| items[i]).collect();
            results.entry(subset).or_insert(0);
        }
    }
    let _ = universe;
    let mut out: Vec<FrequentItemset> = results
        .into_keys()
        .map(|itemset| {
            let support = txs.support_of(&itemset);
            FrequentItemset::new(itemset, support)
        })
        .filter(|f| f.support >= threshold)
        .collect();
    anomex_fim::sort_canonical(&mut out);
    out
}

/// Small random transaction sets: up to 12 transactions, items 0..8,
/// weights 0..50 — tiny enough for brute force, rich enough to bite.
fn arb_txs() -> impl Strategy<Value = TransactionSet> {
    prop::collection::vec((prop::collection::vec(0u64..8, 1..5), 0u64..50), 1..12).prop_map(|raw| {
        raw.into_iter()
            .map(|(vals, w)| Transaction::new(vals.into_iter().map(Item).collect(), w))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(128))]

    #[test]
    fn three_algorithms_match_brute_force(txs in arb_txs(), threshold in 1u64..100) {
        let reference = brute_force(&txs, threshold);
        let matrix = txs.to_matrix();
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            let got = mine(
                &matrix,
                &MiningConfig {
                    algorithm,
                    min_support: MinSupport::Absolute(threshold),
                    max_len: 0,
                    threads: 1,
                },
            );
            prop_assert_eq!(&got, &reference, "{} disagrees with brute force", algorithm);
        }
    }

    #[test]
    fn matrix_agrees_with_row_oriented_reference(txs in arb_txs()) {
        // The columnar encoding is lossless: weights, universe and the
        // support of any itemset drawn from the data match the
        // row-oriented linear-scan reference.
        let matrix = txs.to_matrix();
        prop_assert_eq!(matrix.len(), txs.len());
        prop_assert_eq!(matrix.total_weight(), txs.total_weight());
        prop_assert_eq!(matrix.item_universe(), txs.item_universe());
        prop_assert_eq!(matrix.dropped_items(), 0);
        for t in txs.transactions() {
            let set: Itemset = t.items().iter().copied().collect();
            prop_assert_eq!(matrix.support_of(&set), txs.support_of(&set), "itemset {}", set);
        }
        // Re-weighting to unit weights matches the row-oriented view.
        let unit = matrix.unit_weights();
        let unit_txs = txs.unit_weights();
        prop_assert_eq!(unit.total_weight(), unit_txs.total_weight());
        for t in txs.transactions() {
            let set: Itemset = t.items().iter().copied().collect();
            prop_assert_eq!(unit.support_of(&set), unit_txs.support_of(&set));
        }
    }

    #[test]
    fn parallel_apriori_matches_sequential(txs in arb_txs(), threshold in 1u64..100) {
        let seq = mine(&txs.to_matrix(), &MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Absolute(threshold),
            max_len: 0,
            threads: 1,
        });
        let par = mine(&txs.to_matrix(), &MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Absolute(threshold),
            max_len: 0,
            threads: 4,
        });
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn support_is_antimonotone(txs in arb_txs(), threshold in 1u64..30) {
        let results = mine(&txs.to_matrix(), &MiningConfig {
            min_support: MinSupport::Absolute(threshold),
            ..MiningConfig::default()
        });
        let by_set: HashMap<&Itemset, u64> =
            results.iter().map(|f| (&f.itemset, f.support)).collect();
        for f in &results {
            for sub in f.itemset.proper_subsets() {
                if sub.is_empty() { continue; }
                let sub_support = by_set.get(&sub).copied()
                    .unwrap_or_else(|| txs.support_of(&sub));
                prop_assert!(
                    sub_support >= f.support,
                    "subset {} support {} < superset {} support {}",
                    sub, sub_support, f.itemset, f.support
                );
            }
        }
    }

    #[test]
    fn mined_supports_are_exact(txs in arb_txs(), threshold in 1u64..50) {
        let results = mine(&txs.to_matrix(), &MiningConfig {
            min_support: MinSupport::Absolute(threshold),
            ..MiningConfig::default()
        });
        for f in &results {
            prop_assert_eq!(f.support, txs.support_of(&f.itemset));
        }
    }

    #[test]
    fn maximal_sets_cover_all_frequent_sets(txs in arb_txs(), threshold in 1u64..30) {
        let all = mine(&txs.to_matrix(), &MiningConfig {
            min_support: MinSupport::Absolute(threshold),
            ..MiningConfig::default()
        });
        let maximal = maximal_only(all.clone());
        // Every frequent itemset is a subset of some maximal itemset.
        for f in &all {
            prop_assert!(
                maximal.iter().any(|m| f.itemset.is_subset_of(&m.itemset)),
                "{} not covered", f.itemset
            );
        }
        // No maximal itemset is a subset of another.
        for a in &maximal {
            for b in &maximal {
                if a.itemset != b.itemset {
                    prop_assert!(!a.itemset.is_subset_of(&b.itemset));
                }
            }
        }
    }

    #[test]
    fn closed_preserves_support_information(txs in arb_txs(), threshold in 1u64..30) {
        let all = mine(&txs.to_matrix(), &MiningConfig {
            min_support: MinSupport::Absolute(threshold),
            ..MiningConfig::default()
        });
        let closed = closed_only(all.clone());
        // Closure property: the support of any frequent itemset equals the
        // max support among closed supersets.
        for f in &all {
            let recovered = closed
                .iter()
                .filter(|c| f.itemset.is_subset_of(&c.itemset))
                .map(|c| c.support)
                .max();
            prop_assert_eq!(recovered, Some(f.support), "itemset {}", f.itemset);
        }
    }

    #[test]
    fn topk_returns_at_most_k_and_respects_floor(
        txs in arb_txs(),
        k in 1usize..20,
        floor in 1u64..20,
    ) {
        let r = mine_top_k(&txs.to_matrix(), &TopKConfig {
            k,
            floor,
            max_rounds: 24,
            max_len: 0,
            algorithm: Algorithm::Apriori,
        });
        prop_assert!(r.itemsets.len() <= k);
        prop_assert!(r.chosen_support >= floor.min(txs.total_weight().max(1)));
        for f in &r.itemsets {
            prop_assert!(f.support >= r.chosen_support);
            prop_assert_eq!(f.support, txs.support_of(&f.itemset));
        }
    }

    #[test]
    fn topk_finds_k_when_k_exist_above_floor(txs in arb_txs(), k in 1usize..8) {
        let floor = 1;
        let available = maximal_only(mine(&txs.to_matrix(), &MiningConfig {
            min_support: MinSupport::Absolute(floor),
            ..MiningConfig::default()
        })).len();
        let r = mine_top_k(&txs.to_matrix(), &TopKConfig {
            k,
            floor,
            max_rounds: 64,
            max_len: 0,
            algorithm: Algorithm::Apriori,
        });
        // The search prefers meaningful itemsets over reaching k: the
        // regression guard may stop the descent early when lower
        // thresholds displace high-support structure with noise
        // supersets. The contract is:
        // (1) never more than k;
        prop_assert!(r.itemsets.len() <= k);
        // (2) something is returned whenever anything is frequent at all;
        if available >= 1 {
            prop_assert!(!r.itemsets.is_empty(), "floor offers {available}, got none");
        }
        // (3) every returned support clears the chosen threshold & floor;
        prop_assert!(r.chosen_support >= floor);
        for f in &r.itemsets {
            prop_assert!(f.support >= r.chosen_support);
        }
        // (4) the returned set is subset-free (maximal among itself).
        for a in &r.itemsets {
            for b in &r.itemsets {
                if a.itemset != b.itemset {
                    prop_assert!(!a.itemset.is_subset_of(&b.itemset));
                }
            }
        }
    }

    #[test]
    fn max_len_bound_is_respected_by_all(txs in arb_txs(), max_len in 1usize..4) {
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            let matrix = txs.to_matrix();
            let results = mine(&matrix, &MiningConfig {
                algorithm,
                min_support: MinSupport::Absolute(1),
                max_len,
                threads: 1,
            });
            prop_assert!(results.iter().all(|f| f.itemset.len() <= max_len));
            // And the bounded output equals the unbounded output filtered.
            let full = mine(&matrix, &MiningConfig {
                algorithm,
                min_support: MinSupport::Absolute(1),
                max_len: 0,
                threads: 1,
            });
            let filtered: Vec<_> = full.into_iter()
                .filter(|f| f.itemset.len() <= max_len)
                .collect();
            prop_assert_eq!(results, filtered);
        }
    }
}

//! Support thresholds and mined-itemset results.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::item::Itemset;

/// A minimum-support threshold, absolute or relative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MinSupport {
    /// At least this much accumulated weight.
    Absolute(u64),
    /// At least this fraction of total weight (`0.0..=1.0`).
    Fraction(f64),
}

impl MinSupport {
    /// Resolve to an absolute weight threshold given a corpus's total
    /// weight (see [`crate::matrix::TransactionMatrix::total_weight`]).
    ///
    /// Fractions round *up* (an itemset must meet or beat the fraction) and
    /// the result is never below 1 — an itemset with zero support is never
    /// "frequent".
    pub fn resolve(self, total_weight: u64) -> u64 {
        match self {
            MinSupport::Absolute(v) => v.max(1),
            MinSupport::Fraction(f) => {
                let f = f.clamp(0.0, 1.0);
                let raw = (f * total_weight as f64).ceil() as u64;
                raw.max(1)
            }
        }
    }
}

impl fmt::Display for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinSupport::Absolute(v) => write!(f, "{v}"),
            MinSupport::Fraction(x) => write!(f, "{:.4}%", x * 100.0),
        }
    }
}

/// An itemset together with its mined support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Accumulated weight of transactions containing it.
    pub support: u64,
}

impl FrequentItemset {
    /// Convenience constructor.
    pub fn new(itemset: Itemset, support: u64) -> FrequentItemset {
        FrequentItemset { itemset, support }
    }
}

impl fmt::Display for FrequentItemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (support {})", self.itemset, self.support)
    }
}

/// Canonical ordering for mined results: support descending, then longer
/// itemsets first (more specific), then lexicographic for determinism.
pub fn sort_canonical(results: &mut [FrequentItemset]) {
    results.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| b.itemset.len().cmp(&a.itemset.len()))
            .then_with(|| a.itemset.cmp(&b.itemset))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    #[test]
    fn absolute_resolves_identity_with_floor_one() {
        assert_eq!(MinSupport::Absolute(10).resolve(100), 10);
        assert_eq!(MinSupport::Absolute(0).resolve(100), 1);
    }

    #[test]
    fn fraction_rounds_up() {
        assert_eq!(MinSupport::Fraction(0.5).resolve(30), 15);
        assert_eq!(MinSupport::Fraction(0.34).resolve(30), 11);
        assert_eq!(MinSupport::Fraction(0.0).resolve(30), 1);
        assert_eq!(MinSupport::Fraction(1.0).resolve(30), 30);
    }

    #[test]
    fn fraction_clamps_out_of_range() {
        assert_eq!(MinSupport::Fraction(2.0).resolve(10), 10);
        assert_eq!(MinSupport::Fraction(-1.0).resolve(10), 1);
    }

    #[test]
    fn canonical_sort_orders_by_support_then_length() {
        let mut v = vec![
            FrequentItemset::new(Itemset::new(vec![Item(1)]), 5),
            FrequentItemset::new(Itemset::new(vec![Item(1), Item(2)]), 9),
            FrequentItemset::new(Itemset::new(vec![Item(2)]), 9),
            FrequentItemset::new(Itemset::new(vec![Item(3)]), 9),
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].itemset.len(), 2); // support 9, longer first
        assert_eq!(v[1].itemset, Itemset::new(vec![Item(2)]));
        assert_eq!(v[2].itemset, Itemset::new(vec![Item(3)]));
        assert_eq!(v[3].support, 5);
    }

    #[test]
    fn display_shows_support() {
        let f = FrequentItemset::new(Itemset::new(vec![Item(7)]), 3);
        assert!(f.to_string().contains("support 3"));
    }
}

//! Support thresholds and mined-itemset results.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::item::Itemset;
use crate::transaction::TransactionSet;

/// A minimum-support threshold, absolute or relative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MinSupport {
    /// At least this much accumulated weight.
    Absolute(u64),
    /// At least this fraction of total weight (`0.0..=1.0`).
    Fraction(f64),
}

impl MinSupport {
    /// Resolve to an absolute weight threshold for a transaction set.
    ///
    /// Fractions round *up* (an itemset must meet or beat the fraction) and
    /// the result is never below 1 — an itemset with zero support is never
    /// "frequent".
    pub fn resolve(self, txs: &TransactionSet) -> u64 {
        match self {
            MinSupport::Absolute(v) => v.max(1),
            MinSupport::Fraction(f) => {
                let f = f.clamp(0.0, 1.0);
                let raw = (f * txs.total_weight() as f64).ceil() as u64;
                raw.max(1)
            }
        }
    }
}

impl fmt::Display for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinSupport::Absolute(v) => write!(f, "{v}"),
            MinSupport::Fraction(x) => write!(f, "{:.4}%", x * 100.0),
        }
    }
}

/// An itemset together with its mined support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Accumulated weight of transactions containing it.
    pub support: u64,
}

impl FrequentItemset {
    /// Convenience constructor.
    pub fn new(itemset: Itemset, support: u64) -> FrequentItemset {
        FrequentItemset { itemset, support }
    }
}

impl fmt::Display for FrequentItemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (support {})", self.itemset, self.support)
    }
}

/// Canonical ordering for mined results: support descending, then longer
/// itemsets first (more specific), then lexicographic for determinism.
pub fn sort_canonical(results: &mut [FrequentItemset]) {
    results.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| b.itemset.len().cmp(&a.itemset.len()))
            .then_with(|| a.itemset.cmp(&b.itemset))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::transaction::Transaction;

    fn txs(weights: &[u64]) -> TransactionSet {
        weights.iter().map(|&w| Transaction::new(vec![Item(1)], w)).collect()
    }

    #[test]
    fn absolute_resolves_identity_with_floor_one() {
        assert_eq!(MinSupport::Absolute(10).resolve(&txs(&[100])), 10);
        assert_eq!(MinSupport::Absolute(0).resolve(&txs(&[100])), 1);
    }

    #[test]
    fn fraction_rounds_up() {
        let set = txs(&[10, 10, 10]); // total 30
        assert_eq!(MinSupport::Fraction(0.5).resolve(&set), 15);
        assert_eq!(MinSupport::Fraction(0.34).resolve(&set), 11);
        assert_eq!(MinSupport::Fraction(0.0).resolve(&set), 1);
        assert_eq!(MinSupport::Fraction(1.0).resolve(&set), 30);
    }

    #[test]
    fn fraction_clamps_out_of_range() {
        let set = txs(&[10]);
        assert_eq!(MinSupport::Fraction(2.0).resolve(&set), 10);
        assert_eq!(MinSupport::Fraction(-1.0).resolve(&set), 1);
    }

    #[test]
    fn canonical_sort_orders_by_support_then_length() {
        let mut v = vec![
            FrequentItemset::new(Itemset::new(vec![Item(1)]), 5),
            FrequentItemset::new(Itemset::new(vec![Item(1), Item(2)]), 9),
            FrequentItemset::new(Itemset::new(vec![Item(2)]), 9),
            FrequentItemset::new(Itemset::new(vec![Item(3)]), 9),
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].itemset.len(), 2); // support 9, longer first
        assert_eq!(v[1].itemset, Itemset::new(vec![Item(2)]));
        assert_eq!(v[2].itemset, Itemset::new(vec![Item(3)]));
        assert_eq!(v[3].support, 5);
    }

    #[test]
    fn display_shows_support() {
        let f = FrequentItemset::new(Itemset::new(vec![Item(7)]), 3);
        assert!(f.to_string().contains("support 3"));
    }
}

//! Apriori — the miner the paper builds on, over the columnar matrix.
//!
//! Classic levelwise search: frequent k-itemsets are extended to (k+1)
//! candidates by prefix join, pruned by the antimonotone property (every
//! subset of a frequent itemset is frequent), then counted in one pass over
//! the CSR rows. Counting enumerates each row's k-subsets of dense ids and
//! looks them up in the candidate table — cheap here because flow
//! transactions are at most a handful of items wide, and cheaper than the
//! old row-oriented miner because the keys are `u16` ids, level-1 counts
//! come free from the matrix dictionary, and the projected rows live in
//! one flat buffer.
//!
//! Counting is optionally parallelized with crossbeam scoped threads:
//! rows are sharded, each thread fills a local table, and the shards are
//! summed (the merge itself sharded by candidate). Weighted rows make the
//! same code compute flow-support (weight 1) or packet-support (weight =
//! packets).

use std::collections::{HashMap, HashSet};

use crate::matrix::TransactionMatrix;
use crate::support::{sort_canonical, FrequentItemset};
use crate::{Miner, MiningConfig};

/// Levelwise candidate-generation miner ([`Miner`] implementation).
#[derive(Debug, Clone, Copy, Default)]
pub struct Apriori;

impl Miner for Apriori {
    fn mine(&self, matrix: &TransactionMatrix, config: &MiningConfig) -> Vec<FrequentItemset> {
        let threshold = config.min_support.resolve(matrix.total_weight());
        let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };
        let mut results = Vec::new();
        if matrix.is_empty() {
            return results;
        }

        // Level 1 is free: the matrix dictionary carries weighted
        // supports from the build pass.
        // `0..n_items()` runs in usize: a full dictionary holds exactly
        // 65,536 items, which overflows a u16 counter.
        let frequent_items: Vec<u16> = (0..matrix.n_items())
            .filter(|&id| matrix.item_supports()[id] >= threshold)
            .map(|id| id as u16)
            .collect();
        for &id in &frequent_items {
            results.push(FrequentItemset::new(
                matrix.itemset_of(&[id]),
                matrix.item_supports()[id as usize],
            ));
        }
        if max_len == 1 || frequent_items.len() < 2 {
            sort_canonical(&mut results);
            return results;
        }

        // Project rows onto frequent ids once, into one flat CSR scratch;
        // everything infrequent can never appear in a larger frequent
        // itemset. `frequent` is a dense id → keep flag.
        let mut frequent = vec![false; matrix.n_items()];
        for &id in &frequent_items {
            frequent[id as usize] = true;
        }
        let mut proj_ids: Vec<u16> = Vec::new();
        let mut proj_rows: Vec<(u32, u32, u64)> = Vec::new(); // (start, end, weight)
        for (row, weight) in matrix.rows() {
            if weight == 0 {
                continue;
            }
            let start = proj_ids.len() as u32;
            proj_ids.extend(row.iter().copied().filter(|&id| frequent[id as usize]));
            let end = proj_ids.len() as u32;
            if end - start >= 2 {
                proj_rows.push((start, end, weight));
            } else {
                proj_ids.truncate(start as usize);
            }
        }

        // Levelwise loop over dense-id candidate sets.
        let mut level: Vec<Vec<u16>> = frequent_items.iter().map(|&id| vec![id]).collect();
        let mut k = 2;
        while !level.is_empty() && k <= max_len {
            let candidates = generate_candidates(&level);
            if candidates.is_empty() {
                break;
            }
            let counts =
                count_candidates(&proj_ids, &proj_rows, &candidates, k, config.threads.max(1));
            let mut next_level: Vec<Vec<u16>> = Vec::new();
            for (ids, count) in counts {
                if count >= threshold {
                    results.push(FrequentItemset::new(matrix.itemset_of(&ids), count));
                    next_level.push(ids);
                }
            }
            next_level.sort();
            level = next_level;
            k += 1;
        }

        sort_canonical(&mut results);
        results
    }
}

/// Join + prune: candidates of size k+1 from frequent k-id-sets.
fn generate_candidates(level: &[Vec<u16>]) -> Vec<Vec<u16>> {
    let previous: HashSet<&[u16]> = level.iter().map(|s| s.as_slice()).collect();
    let mut candidates = Vec::new();
    let mut scratch: Vec<u16> = Vec::new();
    // `level` is sorted, so join partners share a prefix and are adjacent
    // in a window; the quadratic scan stops at the first prefix mismatch.
    for (i, a) in level.iter().enumerate() {
        let k = a.len();
        for b in &level[i + 1..] {
            if a[..k - 1] != b[..k - 1] {
                break; // prefix mismatch: no later b can match (sorted)
            }
            debug_assert!(a[k - 1] < b[k - 1]);
            let mut joined = a.clone();
            joined.push(b[k - 1]);
            // Prune: all k-subsets must be frequent.
            let all_frequent = (0..joined.len()).all(|skip| {
                scratch.clear();
                scratch.extend(
                    joined.iter().enumerate().filter_map(|(j, &id)| (j != skip).then_some(id)),
                );
                previous.contains(scratch.as_slice())
            });
            if all_frequent {
                candidates.push(joined);
            }
        }
    }
    candidates
}

/// Count candidate occurrences across the projected rows.
fn count_candidates(
    proj_ids: &[u16],
    proj_rows: &[(u32, u32, u64)],
    candidates: &[Vec<u16>],
    k: usize,
    threads: usize,
) -> HashMap<Vec<u16>, u64> {
    let make_table =
        || -> HashMap<Vec<u16>, u64> { candidates.iter().map(|c| (c.clone(), 0u64)).collect() };
    let count_shard = |shard: &[(u32, u32, u64)], table: &mut HashMap<Vec<u16>, u64>| {
        let mut scratch: Vec<u16> = Vec::with_capacity(k);
        for &(start, end, weight) in shard {
            let row = &proj_ids[start as usize..end as usize];
            if row.len() < k {
                continue;
            }
            combinations(row, k, &mut scratch, &mut |subset: &[u16]| {
                if let Some(count) = table.get_mut(subset) {
                    *count += weight;
                }
            });
        }
    };

    if threads <= 1 || proj_rows.len() < 4 * threads {
        let mut table = make_table();
        count_shard(proj_rows, &mut table);
        return table;
    }

    // Shard rows; each worker counts into a private table.
    let chunk = proj_rows.len().div_ceil(threads);
    let mut tables: Vec<HashMap<Vec<u16>, u64>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = proj_rows
            .chunks(chunk)
            .map(|shard| {
                let mut table = make_table();
                scope.spawn(move |_| {
                    count_shard(shard, &mut table);
                    table
                })
            })
            .collect();
        for h in handles {
            tables.push(h.join().expect("apriori counting worker panicked"));
        }
    })
    .expect("apriori counting scope panicked");

    merge_tables(tables, candidates, threads)
}

/// Sum the per-worker count tables.
///
/// The merge itself is sharded **by candidate**: every worker table
/// holds an entry for every candidate (pre-inserted by `make_table`),
/// so summing a candidate across tables is independent of every other
/// candidate. With many candidates a single-threaded fold of the
/// tables dominates the levelwise pass; slicing the candidate list
/// across the same thread pool parallelizes it with no contention.
fn merge_tables(
    tables: Vec<HashMap<Vec<u16>, u64>>,
    candidates: &[Vec<u16>],
    threads: usize,
) -> HashMap<Vec<u16>, u64> {
    if tables.len() <= 1 || threads <= 1 || candidates.len() < 2 * threads {
        let mut tables = tables;
        let mut merged = tables.pop().unwrap_or_default();
        for table in tables {
            for (key, value) in table {
                *merged.entry(key).or_insert(0) += value;
            }
        }
        return merged;
    }

    let shard_len = candidates.len().div_ceil(threads);
    let tables = &tables;
    let mut merged: HashMap<Vec<u16>, u64> = HashMap::with_capacity(candidates.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(shard_len)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut partial: HashMap<Vec<u16>, u64> = HashMap::with_capacity(shard.len());
                    for candidate in shard {
                        let total = tables
                            .iter()
                            .map(|t| t.get(candidate.as_slice()).copied().unwrap_or(0))
                            .sum();
                        partial.insert(candidate.clone(), total);
                    }
                    partial
                })
            })
            .collect();
        for h in handles {
            merged.extend(h.join().expect("apriori merge worker panicked"));
        }
    })
    .expect("apriori merge scope panicked");
    merged
}

/// Enumerate k-combinations of a sorted slice in lexicographic order.
fn combinations(items: &[u16], k: usize, scratch: &mut Vec<u16>, f: &mut impl FnMut(&[u16])) {
    if k == 0 {
        f(scratch);
        return;
    }
    if items.len() < k {
        return;
    }
    for i in 0..=items.len() - k {
        scratch.push(items[i]);
        combinations(&items[i + 1..], k - 1, scratch, f);
        scratch.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, Itemset};
    use crate::support::MinSupport;
    use crate::transaction::{Transaction, TransactionSet};

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn iset(vals: &[u64]) -> Itemset {
        Itemset::new(vals.iter().map(|&v| Item(v)).collect())
    }

    fn classic_dataset() -> TransactionSet {
        // The canonical textbook example.
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn cfg(abs: u64) -> MiningConfig {
        MiningConfig { min_support: MinSupport::Absolute(abs), ..MiningConfig::default() }
    }

    fn run(txs: &TransactionSet, config: &MiningConfig) -> Vec<FrequentItemset> {
        Apriori.mine(&txs.to_matrix(), config)
    }

    fn support_of(results: &[FrequentItemset], set: &Itemset) -> Option<u64> {
        results.iter().find(|f| &f.itemset == set).map(|f| f.support)
    }

    #[test]
    fn textbook_example_level_counts() {
        let results = run(&classic_dataset(), &cfg(2));
        // Known frequent itemsets at min support 2:
        assert_eq!(support_of(&results, &iset(&[1])), Some(6));
        assert_eq!(support_of(&results, &iset(&[2])), Some(7));
        assert_eq!(support_of(&results, &iset(&[3])), Some(6));
        assert_eq!(support_of(&results, &iset(&[4])), Some(2));
        assert_eq!(support_of(&results, &iset(&[5])), Some(2));
        assert_eq!(support_of(&results, &iset(&[1, 2])), Some(4));
        assert_eq!(support_of(&results, &iset(&[1, 3])), Some(4));
        assert_eq!(support_of(&results, &iset(&[1, 5])), Some(2));
        assert_eq!(support_of(&results, &iset(&[2, 3])), Some(4));
        assert_eq!(support_of(&results, &iset(&[2, 4])), Some(2));
        assert_eq!(support_of(&results, &iset(&[2, 5])), Some(2));
        assert_eq!(support_of(&results, &iset(&[1, 2, 3])), Some(2));
        assert_eq!(support_of(&results, &iset(&[1, 2, 5])), Some(2));
        // And nothing infrequent leaks through.
        assert_eq!(support_of(&results, &iset(&[3, 5])), None);
        assert_eq!(results.len(), 13);
    }

    #[test]
    fn supports_match_linear_scan_reference() {
        let txs = classic_dataset();
        for f in run(&txs, &cfg(2)) {
            assert_eq!(f.support, txs.support_of(&f.itemset), "itemset {}", f.itemset);
        }
    }

    #[test]
    fn weighted_support_counts_packets_not_flows() {
        // 2 heavy flows sharing items {1,2}; 5 light flows on {3}.
        let txs = TransactionSet::from_transactions(vec![
            t(&[1, 2], 500_000),
            t(&[1, 2], 500_000),
            t(&[3], 1),
            t(&[3], 1),
            t(&[3], 1),
            t(&[3], 1),
            t(&[3], 1),
        ]);
        let results = run(&txs, &cfg(1_000_000));
        // Only the heavy pair (and its subsets) reaches 1M packets.
        assert_eq!(support_of(&results, &iset(&[1, 2])), Some(1_000_000));
        assert_eq!(support_of(&results, &iset(&[3])), None);
        // Under flow support the picture inverts.
        let flow_results = run(&txs.unit_weights(), &cfg(5));
        assert_eq!(support_of(&flow_results, &iset(&[3])), Some(5));
        assert_eq!(support_of(&flow_results, &iset(&[1, 2])), None);
    }

    #[test]
    fn antimonotone_property_holds() {
        let results = run(&classic_dataset(), &cfg(2));
        for f in &results {
            for sub in f.itemset.proper_subsets() {
                if sub.is_empty() {
                    continue;
                }
                let sub_support = support_of(&results, &sub)
                    .unwrap_or_else(|| panic!("subset {sub} of {} missing", f.itemset));
                assert!(sub_support >= f.support);
            }
        }
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let results = run(&classic_dataset(), &MiningConfig { max_len: 1, ..cfg(2) });
        assert!(results.iter().all(|f| f.itemset.len() == 1));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(run(&TransactionSet::new(), &cfg(1)).is_empty());
        let txs = TransactionSet::from_transactions(vec![t(&[], 5)]);
        assert!(run(&txs, &cfg(1)).is_empty());
        // Threshold above total weight finds nothing.
        let txs = classic_dataset();
        assert!(run(&txs, &cfg(100)).is_empty());
    }

    #[test]
    fn all_identical_transactions() {
        let txs: TransactionSet = (0..10).map(|_| t(&[1, 2, 3], 1)).collect();
        let results = run(&txs, &cfg(10));
        // Every one of the 7 nonempty subsets has support 10.
        assert_eq!(results.len(), 7);
        assert!(results.iter().all(|f| f.support == 10));
    }

    #[test]
    fn parallel_counting_agrees_with_sequential() {
        // Moderate random-ish dataset via a simple LCG.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let txs: TransactionSet = (0..500)
            .map(|_| {
                let n = 2 + (next() % 5) as usize;
                let items: Vec<u64> = (0..n).map(|_| next() % 20).collect();
                t(&items, 1 + next() % 100)
            })
            .collect();
        let seq = run(&txs, &MiningConfig { threads: 1, ..cfg(200) });
        let par = run(&txs, &MiningConfig { threads: 4, ..cfg(200) });
        assert_eq!(seq, par);
        assert!(!seq.is_empty());
    }

    #[test]
    fn sharded_merge_matches_sequential_fold() {
        // Hand-built worker tables over a known candidate list.
        let candidates: Vec<Vec<u16>> = (0..37u16).map(|v| vec![v, v + 100]).collect();
        let mut tables: Vec<HashMap<Vec<u16>, u64>> = Vec::new();
        for w in 0..4u64 {
            let table: HashMap<Vec<u16>, u64> = candidates
                .iter()
                .enumerate()
                .map(|(i, c)| (c.clone(), w * 1_000 + i as u64))
                .collect();
            tables.push(table);
        }
        let sharded = merge_tables(tables.clone(), &candidates, 4);
        let sequential = merge_tables(tables, &candidates, 1);
        assert_eq!(sharded, sequential);
        // Spot-check one sum: candidate i totals Σ_w (w*1000 + i).
        assert_eq!(sharded[candidates[5].as_slice()], 6_000 + 4 * 5);
    }

    #[test]
    fn fraction_threshold_scales_with_total_weight() {
        let txs = classic_dataset(); // 9 unit transactions
        let results = run(&txs, &MiningConfig { min_support: MinSupport::Fraction(0.5), ..cfg(0) });
        // ceil(0.5 * 9) = 5: only items 1 (6), 2 (7), 3 (6) qualify.
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn results_are_canonically_ordered() {
        let results = run(&classic_dataset(), &cfg(2));
        for w in results.windows(2) {
            let ok = w[0].support > w[1].support
                || (w[0].support == w[1].support && w[0].itemset.len() > w[1].itemset.len())
                || (w[0].support == w[1].support
                    && w[0].itemset.len() == w[1].itemset.len()
                    && w[0].itemset <= w[1].itemset);
            assert!(ok, "out of order: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn combinations_enumerates_n_choose_k() {
        let items: Vec<u16> = (0..6).collect();
        let mut count = 0;
        let mut scratch = Vec::new();
        combinations(&items, 3, &mut scratch, &mut |s| {
            assert_eq!(s.len(), 3);
            count += 1;
        });
        assert_eq!(count, 20); // C(6,3)
    }
}

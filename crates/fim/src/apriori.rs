//! Apriori — the miner the paper builds on.
//!
//! Classic levelwise search: frequent k-itemsets are extended to (k+1)
//! candidates by prefix join, pruned by the antimonotone property (every
//! subset of a frequent itemset is frequent), then counted in one pass over
//! the transactions. Counting enumerates each transaction's k-subsets and
//! looks them up in the candidate table — cheap here because flow
//! transactions are at most a handful of items wide.
//!
//! Counting is optionally parallelized with crossbeam scoped threads:
//! transactions are sharded, each thread fills a local table, and the
//! shards are summed. Weighted transactions make the same code compute
//! flow-support (weight 1) or packet-support (weight = packets).

use std::collections::{HashMap, HashSet};

use crate::item::{Item, Itemset};
use crate::support::{sort_canonical, FrequentItemset, MinSupport};
use crate::transaction::TransactionSet;

/// Apriori tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AprioriConfig {
    /// Support threshold.
    pub min_support: MinSupport,
    /// Longest itemset to mine (0 = unbounded).
    pub max_len: usize,
    /// Worker threads for candidate counting (1 = sequential).
    pub threads: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig { min_support: MinSupport::Fraction(0.01), max_len: 0, threads: 1 }
    }
}

/// Mine all frequent itemsets.
///
/// Results are in canonical order (support descending, longer first).
pub fn apriori(txs: &TransactionSet, config: &AprioriConfig) -> Vec<FrequentItemset> {
    let threshold = config.min_support.resolve(txs);
    let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };
    let mut results = Vec::new();
    if txs.is_empty() {
        return results;
    }

    // Level 1: plain item counting.
    let mut item_counts: HashMap<Item, u64> = HashMap::new();
    for t in txs.transactions() {
        for &item in t.items() {
            *item_counts.entry(item).or_insert(0) += t.weight();
        }
    }
    let mut frequent_items: Vec<Item> =
        item_counts.iter().filter(|&(_, &c)| c >= threshold).map(|(&i, _)| i).collect();
    frequent_items.sort_unstable();
    for &item in &frequent_items {
        results.push(FrequentItemset::new(Itemset::single(item), item_counts[&item]));
    }
    if max_len == 1 || frequent_items.len() < 2 {
        sort_canonical(&mut results);
        return results;
    }

    // Project transactions onto frequent items once; everything infrequent
    // can never appear in a larger frequent itemset.
    let frequent_set: HashSet<Item> = frequent_items.iter().copied().collect();
    let projected: Vec<(Vec<Item>, u64)> = txs
        .transactions()
        .iter()
        .filter_map(|t| {
            let items: Vec<Item> =
                t.items().iter().copied().filter(|i| frequent_set.contains(i)).collect();
            (items.len() >= 2 && t.weight() > 0).then_some((items, t.weight()))
        })
        .collect();

    // Levelwise loop.
    let mut level: Vec<Itemset> = frequent_items.iter().map(|&i| Itemset::single(i)).collect();
    let mut k = 2;
    while !level.is_empty() && k <= max_len {
        let candidates = generate_candidates(&level);
        if candidates.is_empty() {
            break;
        }
        let counts = count_candidates(&projected, &candidates, k, config.threads.max(1));
        let mut next_level: Vec<Itemset> = Vec::new();
        for (items, count) in counts {
            if count >= threshold {
                let itemset = Itemset::new(items);
                results.push(FrequentItemset::new(itemset.clone(), count));
                next_level.push(itemset);
            }
        }
        next_level.sort();
        level = next_level;
        k += 1;
    }

    sort_canonical(&mut results);
    results
}

/// Join + prune: candidates of size k+1 from frequent k-itemsets.
fn generate_candidates(level: &[Itemset]) -> Vec<Itemset> {
    let previous: HashSet<&[Item]> = level.iter().map(|s| s.items()).collect();
    let mut candidates = Vec::new();
    // `level` is sorted, so join partners share a prefix and are adjacent
    // in a window; the quadratic scan stops at the first prefix mismatch.
    for (i, a) in level.iter().enumerate() {
        for b in &level[i + 1..] {
            match a.apriori_join(b) {
                Some(joined) => {
                    // Prune: all k-subsets must be frequent.
                    let all_frequent =
                        joined.proper_subsets().iter().all(|s| previous.contains(s.items()));
                    if all_frequent {
                        candidates.push(joined);
                    }
                }
                // Prefix mismatch: no later b can match either (sorted).
                None => break,
            }
        }
    }
    candidates
}

/// Count candidate occurrences across (projected) transactions.
fn count_candidates(
    projected: &[(Vec<Item>, u64)],
    candidates: &[Itemset],
    k: usize,
    threads: usize,
) -> HashMap<Vec<Item>, u64> {
    let make_table = || -> HashMap<Vec<Item>, u64> {
        candidates.iter().map(|c| (c.items().to_vec(), 0u64)).collect()
    };

    if threads <= 1 || projected.len() < 4 * threads {
        let mut table = make_table();
        for (items, weight) in projected {
            count_one(items, *weight, k, &mut table);
        }
        return table;
    }

    // Shard transactions; each worker counts into a private table.
    let chunk = projected.len().div_ceil(threads);
    let mut tables: Vec<HashMap<Vec<Item>, u64>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = projected
            .chunks(chunk)
            .map(|shard| {
                let mut table = make_table();
                scope.spawn(move |_| {
                    for (items, weight) in shard {
                        count_one(items, *weight, k, &mut table);
                    }
                    table
                })
            })
            .collect();
        for h in handles {
            tables.push(h.join().expect("apriori counting worker panicked"));
        }
    })
    .expect("apriori counting scope panicked");

    merge_tables(tables, candidates, threads)
}

/// Sum the per-worker count tables.
///
/// The merge itself is sharded **by candidate**: every worker table
/// holds an entry for every candidate (pre-inserted by `make_table`),
/// so summing a candidate across tables is independent of every other
/// candidate. With many candidates a single-threaded fold of the
/// tables dominates the levelwise pass; slicing the candidate list
/// across the same thread pool parallelizes it with no contention.
fn merge_tables(
    tables: Vec<HashMap<Vec<Item>, u64>>,
    candidates: &[Itemset],
    threads: usize,
) -> HashMap<Vec<Item>, u64> {
    if tables.len() <= 1 || threads <= 1 || candidates.len() < 2 * threads {
        let mut tables = tables;
        let mut merged = tables.pop().unwrap_or_default();
        for table in tables {
            for (key, value) in table {
                *merged.entry(key).or_insert(0) += value;
            }
        }
        return merged;
    }

    let shard_len = candidates.len().div_ceil(threads);
    let tables = &tables;
    let mut merged: HashMap<Vec<Item>, u64> = HashMap::with_capacity(candidates.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(shard_len)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut partial: HashMap<Vec<Item>, u64> = HashMap::with_capacity(shard.len());
                    for candidate in shard {
                        let total = tables
                            .iter()
                            .map(|t| t.get(candidate.items()).copied().unwrap_or(0))
                            .sum();
                        partial.insert(candidate.items().to_vec(), total);
                    }
                    partial
                })
            })
            .collect();
        for h in handles {
            merged.extend(h.join().expect("apriori merge worker panicked"));
        }
    })
    .expect("apriori merge scope panicked");
    merged
}

/// Add `weight` to every k-subset of `items` present in `table`.
fn count_one(items: &[Item], weight: u64, k: usize, table: &mut HashMap<Vec<Item>, u64>) {
    if items.len() < k {
        return;
    }
    let mut scratch: Vec<Item> = Vec::with_capacity(k);
    combinations(items, k, &mut scratch, &mut |subset: &[Item]| {
        if let Some(count) = table.get_mut(subset) {
            *count += weight;
        }
    });
}

/// Enumerate k-combinations of a sorted slice in lexicographic order.
fn combinations(items: &[Item], k: usize, scratch: &mut Vec<Item>, f: &mut impl FnMut(&[Item])) {
    if k == 0 {
        f(scratch);
        return;
    }
    if items.len() < k {
        return;
    }
    for i in 0..=items.len() - k {
        scratch.push(items[i]);
        combinations(&items[i + 1..], k - 1, scratch, f);
        scratch.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn iset(vals: &[u64]) -> Itemset {
        Itemset::new(vals.iter().map(|&v| Item(v)).collect())
    }

    fn classic_dataset() -> TransactionSet {
        // The canonical textbook example.
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn cfg(abs: u64) -> AprioriConfig {
        AprioriConfig { min_support: MinSupport::Absolute(abs), max_len: 0, threads: 1 }
    }

    fn support_of(results: &[FrequentItemset], set: &Itemset) -> Option<u64> {
        results.iter().find(|f| &f.itemset == set).map(|f| f.support)
    }

    #[test]
    fn textbook_example_level_counts() {
        let results = apriori(&classic_dataset(), &cfg(2));
        // Known frequent itemsets at min support 2:
        assert_eq!(support_of(&results, &iset(&[1])), Some(6));
        assert_eq!(support_of(&results, &iset(&[2])), Some(7));
        assert_eq!(support_of(&results, &iset(&[3])), Some(6));
        assert_eq!(support_of(&results, &iset(&[4])), Some(2));
        assert_eq!(support_of(&results, &iset(&[5])), Some(2));
        assert_eq!(support_of(&results, &iset(&[1, 2])), Some(4));
        assert_eq!(support_of(&results, &iset(&[1, 3])), Some(4));
        assert_eq!(support_of(&results, &iset(&[1, 5])), Some(2));
        assert_eq!(support_of(&results, &iset(&[2, 3])), Some(4));
        assert_eq!(support_of(&results, &iset(&[2, 4])), Some(2));
        assert_eq!(support_of(&results, &iset(&[2, 5])), Some(2));
        assert_eq!(support_of(&results, &iset(&[1, 2, 3])), Some(2));
        assert_eq!(support_of(&results, &iset(&[1, 2, 5])), Some(2));
        // And nothing infrequent leaks through.
        assert_eq!(support_of(&results, &iset(&[3, 5])), None);
        assert_eq!(results.len(), 13);
    }

    #[test]
    fn supports_match_linear_scan_reference() {
        let txs = classic_dataset();
        for f in apriori(&txs, &cfg(2)) {
            assert_eq!(f.support, txs.support_of(&f.itemset), "itemset {}", f.itemset);
        }
    }

    #[test]
    fn weighted_support_counts_packets_not_flows() {
        // 2 heavy flows sharing items {1,2}; 5 light flows on {3}.
        let txs = TransactionSet::from_transactions(vec![
            t(&[1, 2], 500_000),
            t(&[1, 2], 500_000),
            t(&[3], 1),
            t(&[3], 1),
            t(&[3], 1),
            t(&[3], 1),
            t(&[3], 1),
        ]);
        let results = apriori(&txs, &cfg(1_000_000));
        // Only the heavy pair (and its subsets) reaches 1M packets.
        assert_eq!(support_of(&results, &iset(&[1, 2])), Some(1_000_000));
        assert_eq!(support_of(&results, &iset(&[3])), None);
        // Under flow support the picture inverts.
        let flow_results = apriori(&txs.unit_weights(), &cfg(5));
        assert_eq!(support_of(&flow_results, &iset(&[3])), Some(5));
        assert_eq!(support_of(&flow_results, &iset(&[1, 2])), None);
    }

    #[test]
    fn antimonotone_property_holds() {
        let results = apriori(&classic_dataset(), &cfg(2));
        for f in &results {
            for sub in f.itemset.proper_subsets() {
                if sub.is_empty() {
                    continue;
                }
                let sub_support = support_of(&results, &sub)
                    .unwrap_or_else(|| panic!("subset {sub} of {} missing", f.itemset));
                assert!(sub_support >= f.support);
            }
        }
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let results = apriori(
            &classic_dataset(),
            &AprioriConfig { min_support: MinSupport::Absolute(2), max_len: 1, threads: 1 },
        );
        assert!(results.iter().all(|f| f.itemset.len() == 1));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(apriori(&TransactionSet::new(), &cfg(1)).is_empty());
        let txs = TransactionSet::from_transactions(vec![t(&[], 5)]);
        assert!(apriori(&txs, &cfg(1)).is_empty());
        // Threshold above total weight finds nothing.
        let txs = classic_dataset();
        assert!(apriori(&txs, &cfg(100)).is_empty());
    }

    #[test]
    fn all_identical_transactions() {
        let txs: TransactionSet = (0..10).map(|_| t(&[1, 2, 3], 1)).collect();
        let results = apriori(&txs, &cfg(10));
        // Every one of the 7 nonempty subsets has support 10.
        assert_eq!(results.len(), 7);
        assert!(results.iter().all(|f| f.support == 10));
    }

    #[test]
    fn parallel_counting_agrees_with_sequential() {
        // Moderate random-ish dataset via a simple LCG.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let txs: TransactionSet = (0..500)
            .map(|_| {
                let n = 2 + (next() % 5) as usize;
                let items: Vec<u64> = (0..n).map(|_| next() % 20).collect();
                t(&items, 1 + next() % 100)
            })
            .collect();
        let seq = apriori(
            &txs,
            &AprioriConfig { min_support: MinSupport::Absolute(200), max_len: 0, threads: 1 },
        );
        let par = apriori(
            &txs,
            &AprioriConfig { min_support: MinSupport::Absolute(200), max_len: 0, threads: 4 },
        );
        assert_eq!(seq, par);
        assert!(!seq.is_empty());
    }

    #[test]
    fn sharded_merge_matches_sequential_fold() {
        // Hand-built worker tables over a known candidate list.
        let candidates: Vec<Itemset> = (0..37u64).map(|v| iset(&[v, v + 100])).collect();
        let mut tables: Vec<HashMap<Vec<Item>, u64>> = Vec::new();
        for w in 0..4u64 {
            let table: HashMap<Vec<Item>, u64> = candidates
                .iter()
                .enumerate()
                .map(|(i, c)| (c.items().to_vec(), w * 1_000 + i as u64))
                .collect();
            tables.push(table);
        }
        let sharded = merge_tables(tables.clone(), &candidates, 4);
        let sequential = merge_tables(tables, &candidates, 1);
        assert_eq!(sharded, sequential);
        // Spot-check one sum: candidate i totals Σ_w (w*1000 + i).
        assert_eq!(sharded[candidates[5].items()], 6_000 + 4 * 5);
    }

    #[test]
    fn fraction_threshold_scales_with_total_weight() {
        let txs = classic_dataset(); // 9 unit transactions
        let results = apriori(
            &txs,
            &AprioriConfig { min_support: MinSupport::Fraction(0.5), max_len: 0, threads: 1 },
        );
        // ceil(0.5 * 9) = 5: only items 1 (6), 2 (7), 3 (6) qualify.
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn results_are_canonically_ordered() {
        let results = apriori(&classic_dataset(), &cfg(2));
        for w in results.windows(2) {
            let ok = w[0].support > w[1].support
                || (w[0].support == w[1].support && w[0].itemset.len() > w[1].itemset.len())
                || (w[0].support == w[1].support
                    && w[0].itemset.len() == w[1].itemset.len()
                    && w[0].itemset <= w[1].itemset);
            assert!(ok, "out of order: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn combinations_enumerates_n_choose_k() {
        let items: Vec<Item> = (0..6).map(Item).collect();
        let mut count = 0;
        let mut scratch = Vec::new();
        combinations(&items, 3, &mut scratch, &mut |s| {
            assert_eq!(s.len(), 3);
            count += 1;
        });
        assert_eq!(count, 20); // C(6,3)
    }
}

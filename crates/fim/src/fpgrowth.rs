//! FP-Growth — pattern-growth baseline.
//!
//! Builds a compressed prefix tree (FP-tree) of the transactions, then
//! recursively mines conditional trees per item, avoiding Apriori's
//! candidate generation entirely. Included as the standard comparison
//! point for the performance benches and as an independent implementation
//! to cross-check Apriori's output (the equivalence property tests).

use std::collections::HashMap;

use crate::item::{Item, Itemset};
use crate::support::{sort_canonical, FrequentItemset, MinSupport};
use crate::transaction::TransactionSet;

/// FP-Growth tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpGrowthConfig {
    /// Support threshold.
    pub min_support: MinSupport,
    /// Longest itemset to mine (0 = unbounded).
    pub max_len: usize,
}

impl Default for FpGrowthConfig {
    fn default() -> Self {
        FpGrowthConfig { min_support: MinSupport::Fraction(0.01), max_len: 0 }
    }
}

/// One FP-tree node.
#[derive(Debug, Clone)]
struct Node {
    item: Item,
    weight: u64,
    parent: usize,
    /// Child links, keyed by item. Flow transactions are narrow, so a
    /// sorted Vec outperforms a HashMap here.
    children: Vec<(Item, usize)>,
}

/// The FP-tree plus its header table (per-item node lists).
struct FpTree {
    nodes: Vec<Node>,
    /// Items in *descending* global frequency, with their node lists.
    header: Vec<(Item, u64, Vec<usize>)>,
}

const ROOT: usize = 0;

impl FpTree {
    /// Build from weighted item lists. `paths` items need not be sorted by
    /// frequency; that ordering happens here.
    fn build(paths: &[(Vec<Item>, u64)], threshold: u64) -> FpTree {
        // Global weighted frequencies.
        let mut counts: HashMap<Item, u64> = HashMap::new();
        for (items, weight) in paths {
            for &item in items {
                *counts.entry(item).or_insert(0) += weight;
            }
        }
        // Frequent items, descending frequency (ties: item order) — the
        // canonical FP-tree insertion order.
        let mut frequent: Vec<(Item, u64)> =
            counts.into_iter().filter(|&(_, c)| c >= threshold).collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let rank: HashMap<Item, usize> =
            frequent.iter().enumerate().map(|(i, &(item, _))| (item, i)).collect();

        let mut tree = FpTree {
            nodes: vec![Node {
                item: Item(u64::MAX),
                weight: 0,
                parent: ROOT,
                children: Vec::new(),
            }],
            header: frequent.iter().map(|&(item, count)| (item, count, Vec::new())).collect(),
        };

        for (items, weight) in paths {
            if *weight == 0 {
                continue;
            }
            // Keep frequent items, sort by rank (most frequent first).
            let mut ranked: Vec<(usize, Item)> =
                items.iter().filter_map(|item| rank.get(item).map(|&r| (r, *item))).collect();
            ranked.sort_unstable();
            ranked.dedup();
            tree.insert(&ranked, *weight);
        }
        tree
    }

    fn insert(&mut self, ranked: &[(usize, Item)], weight: u64) {
        let mut current = ROOT;
        for &(rank, item) in ranked {
            let pos = self.nodes[current].children.binary_search_by_key(&item, |&(i, _)| i);
            current = match pos {
                Ok(i) => {
                    let child = self.nodes[current].children[i].1;
                    self.nodes[child].weight += weight;
                    child
                }
                Err(i) => {
                    let child = self.nodes.len();
                    self.nodes.push(Node { item, weight, parent: current, children: Vec::new() });
                    self.nodes[current].children.insert(i, (item, child));
                    self.header[rank].2.push(child);
                    child
                }
            };
        }
    }

    /// Path from a node's parent up to (excluding) the root.
    fn prefix_path(&self, mut node: usize) -> Vec<Item> {
        let mut path = Vec::new();
        node = self.nodes[node].parent;
        while node != ROOT {
            path.push(self.nodes[node].item);
            node = self.nodes[node].parent;
        }
        path
    }
}

/// Mine all frequent itemsets with FP-Growth.
///
/// Results are in canonical order and agree exactly with [`crate::apriori`].
pub fn fpgrowth(txs: &TransactionSet, config: &FpGrowthConfig) -> Vec<FrequentItemset> {
    let threshold = config.min_support.resolve(txs);
    let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };
    let paths: Vec<(Vec<Item>, u64)> =
        txs.transactions().iter().map(|t| (t.items().to_vec(), t.weight())).collect();
    let tree = FpTree::build(&paths, threshold);
    let mut results = Vec::new();
    mine(&tree, threshold, max_len, &Itemset::empty(), &mut results);
    sort_canonical(&mut results);
    results
}

fn mine(
    tree: &FpTree,
    threshold: u64,
    max_len: usize,
    prefix: &Itemset,
    out: &mut Vec<FrequentItemset>,
) {
    // Walk header items from least frequent upward (classic order).
    for (item, support, node_list) in tree.header.iter().rev() {
        let extended = prefix.with(*item);
        out.push(FrequentItemset::new(extended.clone(), *support));
        if extended.len() >= max_len {
            continue;
        }
        // Conditional pattern base: prefix paths weighted by node weight.
        let base: Vec<(Vec<Item>, u64)> = node_list
            .iter()
            .filter_map(|&n| {
                let path = tree.prefix_path(n);
                let weight = tree.nodes[n].weight;
                (!path.is_empty() && weight > 0).then_some((path, weight))
            })
            .collect();
        if base.is_empty() {
            continue;
        }
        let conditional = FpTree::build(&base, threshold);
        if !conditional.header.is_empty() {
            mine(&conditional, threshold, max_len, &extended, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::transaction::Transaction;

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn classic_dataset() -> TransactionSet {
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn run(txs: &TransactionSet, abs: u64) -> Vec<FrequentItemset> {
        fpgrowth(txs, &FpGrowthConfig { min_support: MinSupport::Absolute(abs), max_len: 0 })
    }

    #[test]
    fn matches_apriori_on_textbook_example() {
        let txs = classic_dataset();
        let fp = run(&txs, 2);
        let ap = apriori(
            &txs,
            &AprioriConfig { min_support: MinSupport::Absolute(2), max_len: 0, threads: 1 },
        );
        assert_eq!(fp, ap);
        assert_eq!(fp.len(), 13);
    }

    #[test]
    fn supports_match_linear_scan() {
        let txs = classic_dataset();
        for f in run(&txs, 2) {
            assert_eq!(f.support, txs.support_of(&f.itemset), "itemset {}", f.itemset);
        }
    }

    #[test]
    fn weighted_transactions() {
        let txs = TransactionSet::from_transactions(vec![
            t(&[1, 2], 1_000),
            t(&[2, 3], 10),
            t(&[1, 2, 3], 5),
        ]);
        let results = run(&txs, 1_000);
        let find = |vals: &[u64]| {
            let set = Itemset::new(vals.iter().map(|&v| Item(v)).collect());
            results.iter().find(|f| f.itemset == set).map(|f| f.support)
        };
        assert_eq!(find(&[1]), Some(1_005));
        assert_eq!(find(&[2]), Some(1_015));
        assert_eq!(find(&[1, 2]), Some(1_005));
        assert_eq!(find(&[3]), None);
    }

    #[test]
    fn max_len_respected() {
        let txs = classic_dataset();
        let results =
            fpgrowth(&txs, &FpGrowthConfig { min_support: MinSupport::Absolute(2), max_len: 2 });
        assert!(results.iter().all(|f| f.itemset.len() <= 2));
        assert!(results.iter().any(|f| f.itemset.len() == 2));
    }

    #[test]
    fn empty_inputs() {
        assert!(run(&TransactionSet::new(), 1).is_empty());
        let txs = TransactionSet::from_transactions(vec![t(&[], 3)]);
        assert!(run(&txs, 1).is_empty());
    }

    #[test]
    fn single_path_tree_produces_all_subsets() {
        // All transactions identical → tree is one path; all 2^3-1 subsets.
        let txs: TransactionSet = (0..4).map(|_| t(&[7, 8, 9], 1)).collect();
        let results = run(&txs, 4);
        assert_eq!(results.len(), 7);
        assert!(results.iter().all(|f| f.support == 4));
    }

    #[test]
    fn duplicate_items_within_transaction_counted_once() {
        let txs = TransactionSet::from_transactions(vec![t(&[1, 1, 2], 1), t(&[1, 2], 1)]);
        let results = run(&txs, 2);
        let one = Itemset::new(vec![Item(1)]);
        assert_eq!(results.iter().find(|f| f.itemset == one).unwrap().support, 2);
    }

    #[test]
    fn zero_weight_transactions_ignored() {
        let txs = TransactionSet::from_transactions(vec![t(&[1, 2], 0), t(&[1, 2], 3)]);
        let results = run(&txs, 3);
        assert_eq!(results.len(), 3); // {1}, {2}, {1,2}
    }
}

//! FP-Growth — pattern-growth miner.
//!
//! Builds a compressed prefix tree (FP-tree) of the transactions, then
//! recursively mines conditional trees per item, avoiding Apriori's
//! candidate generation entirely. The tree is built straight from the
//! matrix's dense `u16` ids (global frequencies come free from the
//! dictionary), so nodes are small and rank lookups are array indexing
//! rather than hashing. Included as the standard comparison point for the
//! performance benches and as an independent implementation to cross-check
//! Apriori's output (the equivalence property tests).

use crate::matrix::TransactionMatrix;
use crate::support::{sort_canonical, FrequentItemset};
use crate::{Miner, MiningConfig};

/// Pattern-growth miner ([`Miner`] implementation).
#[derive(Debug, Clone, Copy, Default)]
pub struct FpGrowth;

impl Miner for FpGrowth {
    fn mine(&self, matrix: &TransactionMatrix, config: &MiningConfig) -> Vec<FrequentItemset> {
        let threshold = config.min_support.resolve(matrix.total_weight());
        let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };
        if matrix.is_empty() {
            return Vec::new();
        }

        // Root tree: global frequencies are the dictionary supports —
        // no counting pass over the rows.
        let frequent: Vec<(u16, u64)> = {
            let mut f: Vec<(u16, u64)> = (0..matrix.n_items())
                .map(|id| (id as u16, matrix.item_supports()[id]))
                .filter(|&(_, c)| c >= threshold)
                .collect();
            // Descending frequency (ties: ascending id = ascending item)
            // — the canonical FP-tree insertion order.
            f.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            f
        };
        let mut rank = vec![u32::MAX; matrix.n_items()];
        for (r, &(id, _)) in frequent.iter().enumerate() {
            rank[id as usize] = r as u32;
        }

        let mut tree = FpTree::with_header(&frequent);
        let mut ranked: Vec<(u32, u16)> = Vec::new();
        for (row, weight) in matrix.rows() {
            if weight == 0 {
                continue;
            }
            ranked.clear();
            ranked.extend(row.iter().filter_map(|&id| {
                let r = rank[id as usize];
                (r != u32::MAX).then_some((r, id))
            }));
            ranked.sort_unstable();
            tree.insert(&ranked, weight);
        }

        let mut results = Vec::new();
        let mut prefix: Vec<u16> = Vec::new();
        mine_tree(matrix, &tree, threshold, max_len, &mut prefix, &mut results);
        sort_canonical(&mut results);
        results
    }
}

/// One FP-tree node.
#[derive(Debug, Clone)]
struct Node {
    item: u16,
    weight: u64,
    parent: usize,
    /// Child links, keyed by item id. Flow transactions are narrow, so a
    /// sorted Vec outperforms a HashMap here.
    children: Vec<(u16, usize)>,
}

/// The FP-tree plus its header table (per-item node lists).
struct FpTree {
    nodes: Vec<Node>,
    /// Items in *descending* global frequency, with their node lists.
    header: Vec<(u16, u64, Vec<usize>)>,
}

const ROOT: usize = 0;

impl FpTree {
    fn with_header(frequent: &[(u16, u64)]) -> FpTree {
        FpTree {
            nodes: vec![Node { item: u16::MAX, weight: 0, parent: ROOT, children: Vec::new() }],
            header: frequent.iter().map(|&(id, count)| (id, count, Vec::new())).collect(),
        }
    }

    /// Build a conditional tree from weighted id lists (items unsorted).
    /// Conditional bases are small, so counting goes through a compact
    /// hash table rather than dictionary-sized arrays.
    fn build(paths: &[(Vec<u16>, u64)], threshold: u64) -> FpTree {
        // Weighted frequencies local to this conditional base.
        let mut counts: std::collections::HashMap<u16, u64> = std::collections::HashMap::new();
        for (items, weight) in paths {
            for &id in items {
                *counts.entry(id).or_insert(0) += weight;
            }
        }
        let mut frequent: Vec<(u16, u64)> =
            counts.iter().filter(|&(_, &c)| c >= threshold).map(|(&id, &c)| (id, c)).collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let rank: std::collections::HashMap<u16, u32> =
            frequent.iter().enumerate().map(|(r, &(id, _))| (id, r as u32)).collect();

        let mut tree = FpTree::with_header(&frequent);
        let mut ranked: Vec<(u32, u16)> = Vec::new();
        for (items, weight) in paths {
            if *weight == 0 {
                continue;
            }
            ranked.clear();
            ranked.extend(items.iter().filter_map(|&id| rank.get(&id).map(|&r| (r, id))));
            ranked.sort_unstable();
            ranked.dedup();
            tree.insert(&ranked, *weight);
        }
        tree
    }

    fn insert(&mut self, ranked: &[(u32, u16)], weight: u64) {
        let mut current = ROOT;
        for &(rank, item) in ranked {
            let pos = self.nodes[current].children.binary_search_by_key(&item, |&(i, _)| i);
            current = match pos {
                Ok(i) => {
                    let child = self.nodes[current].children[i].1;
                    self.nodes[child].weight += weight;
                    child
                }
                Err(i) => {
                    let child = self.nodes.len();
                    self.nodes.push(Node { item, weight, parent: current, children: Vec::new() });
                    self.nodes[current].children.insert(i, (item, child));
                    self.header[rank as usize].2.push(child);
                    child
                }
            };
        }
    }

    /// Path from a node's parent up to (excluding) the root.
    fn prefix_path(&self, mut node: usize) -> Vec<u16> {
        let mut path = Vec::new();
        node = self.nodes[node].parent;
        while node != ROOT {
            path.push(self.nodes[node].item);
            node = self.nodes[node].parent;
        }
        path
    }
}

fn mine_tree(
    matrix: &TransactionMatrix,
    tree: &FpTree,
    threshold: u64,
    max_len: usize,
    prefix: &mut Vec<u16>,
    out: &mut Vec<FrequentItemset>,
) {
    // Walk header items from least frequent upward (classic order).
    for (item, support, node_list) in tree.header.iter().rev() {
        prefix.push(*item);
        out.push(FrequentItemset::new(matrix.itemset_of(prefix), *support));
        if prefix.len() >= max_len {
            prefix.pop();
            continue;
        }
        // Conditional pattern base: prefix paths weighted by node weight.
        let base: Vec<(Vec<u16>, u64)> = node_list
            .iter()
            .filter_map(|&n| {
                let path = tree.prefix_path(n);
                let weight = tree.nodes[n].weight;
                (!path.is_empty() && weight > 0).then_some((path, weight))
            })
            .collect();
        if !base.is_empty() {
            let conditional = FpTree::build(&base, threshold);
            if !conditional.header.is_empty() {
                mine_tree(matrix, &conditional, threshold, max_len, prefix, out);
            }
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::item::{Item, Itemset};
    use crate::support::MinSupport;
    use crate::transaction::{Transaction, TransactionSet};

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn classic_dataset() -> TransactionSet {
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn cfg(abs: u64) -> MiningConfig {
        MiningConfig { min_support: MinSupport::Absolute(abs), ..MiningConfig::default() }
    }

    fn run(txs: &TransactionSet, abs: u64) -> Vec<FrequentItemset> {
        FpGrowth.mine(&txs.to_matrix(), &cfg(abs))
    }

    #[test]
    fn matches_apriori_on_textbook_example() {
        let matrix = classic_dataset().to_matrix();
        let fp = FpGrowth.mine(&matrix, &cfg(2));
        let ap = Apriori.mine(&matrix, &cfg(2));
        assert_eq!(fp, ap);
        assert_eq!(fp.len(), 13);
    }

    #[test]
    fn supports_match_linear_scan() {
        let txs = classic_dataset();
        for f in run(&txs, 2) {
            assert_eq!(f.support, txs.support_of(&f.itemset), "itemset {}", f.itemset);
        }
    }

    #[test]
    fn weighted_transactions() {
        let txs = TransactionSet::from_transactions(vec![
            t(&[1, 2], 1_000),
            t(&[2, 3], 10),
            t(&[1, 2, 3], 5),
        ]);
        let results = run(&txs, 1_000);
        let find = |vals: &[u64]| {
            let set = Itemset::new(vals.iter().map(|&v| Item(v)).collect());
            results.iter().find(|f| f.itemset == set).map(|f| f.support)
        };
        assert_eq!(find(&[1]), Some(1_005));
        assert_eq!(find(&[2]), Some(1_015));
        assert_eq!(find(&[1, 2]), Some(1_005));
        assert_eq!(find(&[3]), None);
    }

    #[test]
    fn max_len_respected() {
        let txs = classic_dataset();
        let results = FpGrowth.mine(&txs.to_matrix(), &MiningConfig { max_len: 2, ..cfg(2) });
        assert!(results.iter().all(|f| f.itemset.len() <= 2));
        assert!(results.iter().any(|f| f.itemset.len() == 2));
    }

    #[test]
    fn empty_inputs() {
        assert!(run(&TransactionSet::new(), 1).is_empty());
        let txs = TransactionSet::from_transactions(vec![t(&[], 3)]);
        assert!(run(&txs, 1).is_empty());
    }

    #[test]
    fn single_path_tree_produces_all_subsets() {
        // All transactions identical → tree is one path; all 2^3-1 subsets.
        let txs: TransactionSet = (0..4).map(|_| t(&[7, 8, 9], 1)).collect();
        let results = run(&txs, 4);
        assert_eq!(results.len(), 7);
        assert!(results.iter().all(|f| f.support == 4));
    }

    #[test]
    fn duplicate_items_within_transaction_counted_once() {
        let txs = TransactionSet::from_transactions(vec![t(&[1, 1, 2], 1), t(&[1, 2], 1)]);
        let results = run(&txs, 2);
        let one = Itemset::new(vec![Item(1)]);
        assert_eq!(results.iter().find(|f| f.itemset == one).unwrap().support, 2);
    }

    #[test]
    fn zero_weight_transactions_ignored() {
        let txs = TransactionSet::from_transactions(vec![t(&[1, 2], 0), t(&[1, 2], 3)]);
        let results = run(&txs, 3);
        assert_eq!(results.len(), 3); // {1}, {2}, {1,2}
    }
}

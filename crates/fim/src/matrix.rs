//! Columnar transaction storage — the representation every miner runs on.
//!
//! A [`TransactionMatrix`] dictionary-encodes sparse [`Item`]`(u64)`s into
//! dense `u16` ids and stores transactions as one flat CSR buffer (item-id
//! array + row offsets) with a weight column on the side. The layout buys
//! three things at once:
//!
//! - **One dictionary for every miner.** Apriori counts dense ids into
//!   flat arrays instead of hashing 8-byte items; FP-Growth builds its
//!   tree from `u16`s; Eclat intersects per-item *bitset* tid-lists.
//! - **Cheap re-weighting.** The paper mines the same flows under flow
//!   support and packet support; [`TransactionMatrix::with_weights`]
//!   shares the CSR structure (and the bitset cache) between both views,
//!   so the encode cost is paid once per window.
//! - **Reusable vertical views.** Per-item tid bitsets and pair
//!   intersections are materialized on demand and cached behind the
//!   matrix, so the top-k self-adjusting support search re-mines at many
//!   thresholds without re-scanning the transactions.
//!
//! ## Dense-id order
//!
//! Cold builds ([`MatrixBuilder::build`]) sort the dictionary, so dense-id
//! order equals item order. Warm builds through a persistent
//! [`ItemDictionary`] keep **insertion** order instead (ids stay stable
//! across windows); item-order lookups go through a sorted permutation
//! either way, and every miner's output is independent of the numbering
//! (itemsets decode to sorted [`Itemset`]s and results are canonically
//! ordered), so the two paths mine identically.
//!
//! ## Capacity
//!
//! Dense ids are `u16`: a matrix holds at most **65,536 distinct items**
//! ([`TransactionMatrix::CAPACITY`]). When a cold build exceeds that, the
//! least-frequent items are dropped from the dictionary (and from every
//! row) and counted in [`TransactionMatrix::dropped_items`]; mining
//! results are unaffected whenever the effective support threshold is
//! above [`TransactionMatrix::dropped_max_support`], which for flow
//! traffic (4 items per row) holds at any practical threshold. A warm
//! build never drops: [`DictMatrixBuilder::build`] returns `None` on
//! overflow and the caller re-encodes cold.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::hash::FxHashMap;
use crate::item::{Item, Itemset};
use crate::transaction::TransactionSet;

/// Entries either pair cache (intersection bitsets on the shared
/// columns, supports per weight view) may hold before it stops
/// inserting. Cached values are pure functions of the matrix, so a
/// capped cache can never change a mining result — only how often the
/// join is recomputed.
const PAIR_CACHE_CAP: usize = 4_096;

/// Immutable CSR structure shared between weight views of one matrix.
#[derive(Debug)]
struct Columns {
    /// Dense id → item. Sorted for cold builds (dense-id order equals
    /// item order); insertion-ordered for warm [`ItemDictionary`]
    /// builds. Shared with the dictionary that produced it.
    dict: Arc<Vec<Item>>,
    /// Dense ids permuted so the items behind them ascend — the
    /// binary-search index behind [`TransactionMatrix::id_of`]. The
    /// identity permutation for cold builds.
    lookup: Arc<Vec<u16>>,
    /// Row offsets into `ids`; `len() == rows + 1`.
    offsets: Vec<u32>,
    /// Flat item-id buffer; each row slice is sorted and duplicate-free.
    ids: Vec<u16>,
    /// Per-item tid bitsets, materialized on demand. Bit `t` of entry
    /// `id` says transaction `t` contains `id` — weight-independent, so
    /// the cache is shared across re-weighted views.
    bitsets: Mutex<HashMap<u16, Arc<Vec<u64>>>>,
    /// Pair-intersection bitsets keyed `(a, b)` with `a <= b`,
    /// materialized on demand by [`TransactionMatrix::pair_join`].
    /// Weight-independent like `bitsets`; bounded by [`PAIR_CACHE_CAP`].
    pairs: Mutex<PairBitsets>,
}

/// Cached pair-intersection bitsets, keyed `(a, b)` with `a <= b`.
type PairBitsets = HashMap<(u16, u16), Arc<Vec<u64>>>;

impl Columns {
    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn row(&self, index: usize) -> &[u16] {
        &self.ids[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }
}

/// Dictionary-encoded, column-leaning transaction storage.
///
/// Build one with [`MatrixBuilder`] (streaming, no per-row allocation),
/// with [`DictMatrixBuilder`] over a persistent [`ItemDictionary`]
/// (warm cross-window encode), or via [`TransactionSet::to_matrix`].
/// Cloning is cheap: the CSR structure and every cache are shared, only
/// the weight column is per view.
#[derive(Debug, Clone)]
pub struct TransactionMatrix {
    cols: Arc<Columns>,
    weights: Arc<Vec<u64>>,
    total_weight: u64,
    /// `Some(w)` when every row weighs exactly `w` — enables popcount
    /// support counting on bitsets.
    uniform_weight: Option<u64>,
    /// Weighted support of every dictionary item (level-1 counts, free
    /// at build time).
    item_supports: Arc<Vec<u64>>,
    /// Cached pair supports under *this* weight column (the bitsets
    /// behind them live on the shared `Columns`). Fresh per re-weighted
    /// view, shared across clones of the same view.
    pair_supports: Arc<Mutex<HashMap<(u16, u16), u64>>>,
    dropped_items: u64,
    dropped_max_support: u64,
}

impl TransactionMatrix {
    /// Maximum distinct items one matrix can hold (dense `u16` ids).
    pub const CAPACITY: usize = 1 << 16;

    /// An empty matrix.
    pub fn empty() -> TransactionMatrix {
        MatrixBuilder::new().build()
    }

    /// Streaming builder.
    pub fn builder() -> MatrixBuilder {
        MatrixBuilder::new()
    }

    /// Number of transactions (rows).
    pub fn len(&self) -> usize {
        self.cols.rows()
    }

    /// Whether there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct dictionary items. For a warm build this is the
    /// whole persistent dictionary — a superset of the items present in
    /// the rows (absent entries carry support 0 and never mine).
    pub fn n_items(&self) -> usize {
        self.cols.dict.len()
    }

    /// Sum of all weights (the denominator of relative support).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Distinct items beyond [`Self::CAPACITY`] dropped at build time.
    pub fn dropped_items(&self) -> u64 {
        self.dropped_items
    }

    /// Largest weighted support among dropped items (0 when none were
    /// dropped). Mining below or at this threshold may miss itemsets.
    pub fn dropped_max_support(&self) -> u64 {
        self.dropped_max_support
    }

    /// The item behind a dense id.
    pub fn item(&self, id: u16) -> Item {
        self.cols.dict[id as usize]
    }

    /// The dense id of an item, if it is in the dictionary.
    pub fn id_of(&self, item: Item) -> Option<u16> {
        let lookup = &self.cols.lookup;
        lookup
            .binary_search_by(|&id| self.cols.dict[id as usize].cmp(&item))
            .ok()
            .map(|i| lookup[i])
    }

    /// One row's sorted dense-id slice.
    pub fn row(&self, index: usize) -> &[u16] {
        self.cols.row(index)
    }

    /// One row's weight.
    pub fn weight(&self, index: usize) -> u64 {
        self.weights[index]
    }

    /// The weight column.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Iterate `(sorted ids, weight)` over all rows.
    pub fn rows(&self) -> impl Iterator<Item = (&[u16], u64)> + '_ {
        (0..self.len()).map(move |i| (self.cols.row(i), self.weights[i]))
    }

    /// Weighted support of every dictionary item, indexed by dense id.
    pub fn item_supports(&self) -> &[u64] {
        &self.item_supports
    }

    /// Decode a dense-id slice (ascending) into an [`Itemset`].
    pub fn itemset_of(&self, ids: &[u16]) -> Itemset {
        Itemset::new(ids.iter().map(|&id| self.item(id)).collect())
    }

    /// The dictionary: all distinct items, sorted.
    pub fn item_universe(&self) -> Vec<Item> {
        self.cols.lookup.iter().map(|&id| self.cols.dict[id as usize]).collect()
    }

    /// Same structure, new weight column (shares the CSR buffers and the
    /// bitset/pair-bitset caches; pair *supports* start fresh — they
    /// depend on the weights).
    ///
    /// # Panics
    /// Panics when `weights.len()` differs from the row count.
    pub fn with_weights(&self, weights: Vec<u64>) -> TransactionMatrix {
        assert_eq!(weights.len(), self.len(), "weight column must match row count");
        let (total_weight, uniform_weight) = weight_stats(&weights);
        let mut item_supports = vec![0u64; self.cols.dict.len()];
        for (row, w) in (0..self.len()).map(|i| (self.cols.row(i), weights[i])) {
            for &id in row {
                item_supports[id as usize] += w;
            }
        }
        TransactionMatrix {
            cols: Arc::clone(&self.cols),
            weights: Arc::new(weights),
            total_weight,
            uniform_weight,
            item_supports: Arc::new(item_supports),
            pair_supports: Arc::new(Mutex::new(HashMap::new())),
            dropped_items: self.dropped_items,
            dropped_max_support: self.dropped_max_support,
        }
    }

    /// Flow-support view: every row re-weighted to 1.
    pub fn unit_weights(&self) -> TransactionMatrix {
        self.with_weights(vec![1; self.len()])
    }

    /// Words per tid bitset.
    pub fn bitset_words(&self) -> usize {
        self.len().div_ceil(64)
    }

    /// Tid bitsets for `ids`, in request order. Cached: repeated calls
    /// (e.g. the top-k threshold search, or the packet-support pass over
    /// a re-weighted view) cost one lock round-trip, not a CSR scan.
    pub fn tid_bitsets(&self, ids: &[u16]) -> Vec<Arc<Vec<u64>>> {
        let mut cache = self.cols.bitsets.lock().expect("bitset cache poisoned");
        let missing: Vec<u16> = ids.iter().copied().filter(|id| !cache.contains_key(id)).collect();
        if !missing.is_empty() {
            // One CSR pass fills every missing bitset: a slot table maps
            // dense id → output bitset index.
            let words = self.bitset_words();
            let mut slot = vec![u32::MAX; self.cols.dict.len()];
            for (s, &id) in missing.iter().enumerate() {
                slot[id as usize] = s as u32;
            }
            let mut built = vec![vec![0u64; words]; missing.len()];
            for tid in 0..self.len() {
                for &id in self.cols.row(tid) {
                    let s = slot[id as usize];
                    if s != u32::MAX {
                        built[s as usize][tid / 64] |= 1 << (tid % 64);
                    }
                }
            }
            for (&id, bits) in missing.iter().zip(built) {
                cache.insert(id, Arc::new(bits));
            }
        }
        ids.iter().map(|id| Arc::clone(&cache[id])).collect()
    }

    /// Tid bitset and weighted support of the pair `{a, b}` (dense
    /// ids), cached. The bitset lives on the shared columns (one
    /// materialization across re-weighted views); the support belongs
    /// to this view. This is the top-k search's fast path: every
    /// support-threshold round revisits the same frequent pairs, and a
    /// hit replaces the word-AND + weighted-popcount with two map reads.
    pub fn pair_join(&self, a: u16, b: u16) -> (Arc<Vec<u64>>, u64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        let cached = {
            let cache = self.cols.pairs.lock().expect("pair cache poisoned");
            cache.get(&key).cloned()
        };
        let bits = match cached {
            Some(bits) => bits,
            None => {
                let operands = self.tid_bitsets(&[key.0, key.1]);
                let mut joined: Vec<u64> = operands[0].as_ref().clone();
                for (w, o) in joined.iter_mut().zip(operands[1].iter()) {
                    *w &= o;
                }
                let joined = Arc::new(joined);
                let mut cache = self.cols.pairs.lock().expect("pair cache poisoned");
                if cache.len() < PAIR_CACHE_CAP {
                    cache.insert(key, Arc::clone(&joined));
                }
                joined
            }
        };
        let support = {
            let supports = self.pair_supports.lock().expect("pair support cache poisoned");
            supports.get(&key).copied()
        };
        let support = match support {
            Some(s) => s,
            None => {
                let s = self.support_of_bits(&bits);
                let mut supports = self.pair_supports.lock().expect("pair support cache poisoned");
                if supports.len() < PAIR_CACHE_CAP {
                    supports.insert(key, s);
                }
                s
            }
        };
        (bits, support)
    }

    /// Weighted population count: the support carried by a tid bitset.
    pub fn support_of_bits(&self, words: &[u64]) -> u64 {
        match self.uniform_weight {
            Some(w) => w * words.iter().map(|word| u64::from(word.count_ones())).sum::<u64>(),
            None => {
                let mut support = 0;
                for (k, &word) in words.iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let t = k * 64 + m.trailing_zeros() as usize;
                        support += self.weights[t];
                        m &= m - 1;
                    }
                }
                support
            }
        }
    }

    /// Exact support of an arbitrary itemset — the linear-scan reference
    /// rewritten vertically: intersect the member items' tid bitsets.
    ///
    /// The empty itemset is contained in every transaction; an itemset
    /// with any out-of-dictionary item has support 0 (such items were
    /// either never seen or dropped past [`Self::CAPACITY`]).
    pub fn support_of(&self, itemset: &Itemset) -> u64 {
        if itemset.is_empty() {
            return self.total_weight;
        }
        let Some(ids) =
            itemset.items().iter().map(|&item| self.id_of(item)).collect::<Option<Vec<u16>>>()
        else {
            return 0;
        };
        if ids.len() == 1 {
            return self.item_supports[ids[0] as usize];
        }
        let bitsets = self.tid_bitsets(&ids);
        let mut acc: Vec<u64> = bitsets[0].as_ref().clone();
        for bits in &bitsets[1..] {
            for (a, b) in acc.iter_mut().zip(bits.iter()) {
                *a &= b;
            }
        }
        self.support_of_bits(&acc)
    }
}

impl From<&TransactionSet> for TransactionMatrix {
    fn from(txs: &TransactionSet) -> TransactionMatrix {
        let mut b = MatrixBuilder::new();
        for t in txs.transactions() {
            b.push_row(t.items().iter().copied(), t.weight());
        }
        b.build()
    }
}

fn weight_stats(weights: &[u64]) -> (u64, Option<u64>) {
    let total = weights.iter().sum();
    let uniform = match weights.first() {
        Some(&w) if weights.iter().all(|&x| x == w) => Some(w),
        _ => None,
    };
    (total, uniform)
}

/// Streaming [`TransactionMatrix`] builder.
///
/// Rows land in flat buffers — pushing a row performs **no per-row heap
/// allocation** (the buffers grow amortized, like one long `Vec`), which
/// is what makes `encode_flows` allocation-free per flow.
#[derive(Debug, Default)]
pub struct MatrixBuilder {
    items: Vec<Item>,
    offsets: Vec<u32>,
    weights: Vec<u64>,
}

impl MatrixBuilder {
    /// Empty builder.
    pub fn new() -> MatrixBuilder {
        MatrixBuilder { items: Vec::new(), offsets: vec![0], weights: Vec::new() }
    }

    /// Builder with pre-sized buffers for `rows` rows of about
    /// `items_per_row` items.
    pub fn with_capacity(rows: usize, items_per_row: usize) -> MatrixBuilder {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        MatrixBuilder {
            items: Vec::with_capacity(rows * items_per_row),
            offsets,
            weights: Vec::with_capacity(rows),
        }
    }

    /// Append one transaction. Items are sorted and deduplicated in
    /// place inside the flat buffer.
    ///
    /// # Panics
    /// Panics when the flat item buffer outgrows `u32` offsets (> ~4.2B
    /// items across all rows) — wrapped offsets would silently corrupt
    /// every row, so the cast fails loudly instead.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = Item>, weight: u64) {
        let start = self.items.len();
        self.items.extend(row);
        self.items[start..].sort_unstable();
        // In-place dedup of the fresh tail.
        let mut write = start;
        for read in start..self.items.len() {
            if write == start || self.items[read] != self.items[write - 1] {
                self.items[write] = self.items[read];
                write += 1;
            }
        }
        self.items.truncate(write);
        let offset =
            u32::try_from(self.items.len()).expect("matrix item buffer exceeds u32 offsets");
        self.offsets.push(offset);
        self.weights.push(weight);
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.weights.len()
    }

    /// Freeze into a matrix: count item supports, pick the dictionary
    /// (dropping the least-frequent tail past [`TransactionMatrix::CAPACITY`]),
    /// and remap every row to dense ids.
    pub fn build(self) -> TransactionMatrix {
        let MatrixBuilder { items, mut offsets, weights } = self;

        // Weighted support per distinct item.
        let mut counts: HashMap<Item, u64> = HashMap::new();
        for (r, w) in weights.iter().enumerate() {
            for &item in &items[offsets[r] as usize..offsets[r + 1] as usize] {
                *counts.entry(item).or_insert(0) += w;
            }
        }

        // Dictionary selection. Past capacity, keep the heaviest items:
        // anything dropped has support <= every kept item's support.
        let mut dropped_items = 0u64;
        let mut dropped_max_support = 0u64;
        let mut dict: Vec<Item> = if counts.len() <= TransactionMatrix::CAPACITY {
            counts.keys().copied().collect()
        } else {
            let mut ranked: Vec<(Item, u64)> = counts.iter().map(|(&i, &c)| (i, c)).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let dropped = ranked.split_off(TransactionMatrix::CAPACITY);
            dropped_items = dropped.len() as u64;
            dropped_max_support = dropped.first().map_or(0, |&(_, c)| c);
            ranked.into_iter().map(|(i, _)| i).collect()
        };
        dict.sort_unstable();

        let item_supports: Vec<u64> = dict.iter().map(|i| counts[i]).collect();

        // Remap rows item → dense id. Rows are sorted by item and the
        // dictionary is sorted too, so mapped ids stay ascending; dropped
        // items simply vanish from their rows. `offsets` is rewritten
        // into id space as we go, so each row's *original* item-space
        // bounds must be read before its end offset is overwritten.
        let mut ids: Vec<u16> = Vec::with_capacity(items.len());
        let mut row_start = 0usize;
        for r in 0..weights.len() {
            let row_end = offsets[r + 1] as usize;
            for &item in &items[row_start..row_end] {
                if let Ok(id) = dict.binary_search(&item) {
                    ids.push(id as u16);
                }
            }
            row_start = row_end;
            offsets[r + 1] = ids.len() as u32;
        }

        // A sorted dictionary's item-order lookup is the identity.
        let lookup: Vec<u16> = (0..dict.len()).map(|i| i as u16).collect();
        let (total_weight, uniform_weight) = weight_stats(&weights);
        TransactionMatrix {
            cols: Arc::new(Columns {
                dict: Arc::new(dict),
                lookup: Arc::new(lookup),
                offsets,
                ids,
                bitsets: Mutex::new(HashMap::new()),
                pairs: Mutex::new(HashMap::new()),
            }),
            weights: Arc::new(weights),
            total_weight,
            uniform_weight,
            item_supports: Arc::new(item_supports),
            pair_supports: Arc::new(Mutex::new(HashMap::new())),
            dropped_items,
            dropped_max_support,
        }
    }
}

/// A persistent dictionary shared across windows — the warm-encode path.
///
/// Dense ids are **stable for the dictionary's lifetime**: a new item is
/// appended at the next free id, a repeated item keeps the id it was
/// first interned under. [`DictMatrixBuilder`] builds matrices straight
/// from these ids, skipping the cold path's per-window count pass,
/// dictionary sort and row remap — the bulk of `extract_encode`.
///
/// Mining output is independent of dense-id numbering (itemsets decode
/// to sorted [`Itemset`]s, results are canonically ordered, and stale
/// dictionary entries absent from the rows carry support 0, below every
/// resolvable threshold), so warm and cold builds of the same rows mine
/// identically.
///
/// When interning would overflow the `u16` id space,
/// [`intern`](ItemDictionary::intern) returns `None`; the caller falls
/// back to a cold build for that window and
/// [`reset`](ItemDictionary::reset)s the dictionary — a new **epoch** —
/// so later windows re-warm against the live item population.
#[derive(Debug, Default)]
pub struct ItemDictionary {
    items: Vec<Item>,
    /// Interning is four lookups per encoded flow — keyed by items the
    /// process produced itself, so the non-keyed multiply hash is safe.
    map: FxHashMap<Item, u16>,
    epoch: u64,
    hits: u64,
    misses: u64,
    /// Cached `(dict, lookup)` views handed to built matrices;
    /// invalidated whenever the dictionary grows or resets.
    shared: Option<SharedViews>,
}

/// The `(dict, lookup)` pair a built matrix shares with its dictionary.
type SharedViews = (Arc<Vec<Item>>, Arc<Vec<u16>>);

impl ItemDictionary {
    /// An empty dictionary at epoch 0.
    pub fn new() -> ItemDictionary {
        ItemDictionary::default()
    }

    /// Interned items so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Completed [`reset`](ItemDictionary::reset) cycles.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dense id for `item`, interning it at the next free id when new.
    /// `None` when the `u16` id space is exhausted — the caller should
    /// cold-build the window and [`reset`](ItemDictionary::reset).
    pub fn intern(&mut self, item: Item) -> Option<u16> {
        if let Some(&id) = self.map.get(&item) {
            self.hits += 1;
            return Some(id);
        }
        if self.items.len() >= TransactionMatrix::CAPACITY {
            return None;
        }
        let id = self.items.len() as u16;
        self.items.push(item);
        self.map.insert(item, id);
        self.shared = None;
        self.misses += 1;
        Some(id)
    }

    /// Drop every interned item and start a new epoch — the compaction
    /// path when the id space fills or the item population shifts.
    pub fn reset(&mut self) {
        self.items.clear();
        self.map.clear();
        self.shared = None;
        self.epoch += 1;
    }

    /// Drain the hit/miss counters accumulated since the last call (the
    /// `extract.dict_hits` / `extract.dict_misses` sources).
    pub fn take_stats(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.hits), std::mem::take(&mut self.misses))
    }

    /// Shared dictionary + item-order lookup permutation for a matrix
    /// build, regenerated only when the dictionary changed since the
    /// last call.
    fn shared_views(&mut self) -> SharedViews {
        if self.shared.is_none() {
            let mut lookup: Vec<u16> = (0..self.items.len()).map(|i| i as u16).collect();
            lookup.sort_unstable_by_key(|&id| self.items[id as usize]);
            self.shared = Some((Arc::new(self.items.clone()), Arc::new(lookup)));
        }
        let (items, lookup) = self.shared.as_ref().expect("just populated");
        (Arc::clone(items), Arc::clone(lookup))
    }
}

/// Streaming matrix builder over a persistent [`ItemDictionary`].
///
/// The warm counterpart of [`MatrixBuilder`]: rows are interned to
/// stable dense ids as they are pushed, so freezing the matrix is just
/// an item-support count — no hash-count pass, no dictionary sort, no
/// row remap. [`build`](DictMatrixBuilder::build) returns `None` when
/// the dictionary overflowed mid-window; the caller re-encodes that
/// window cold and [`ItemDictionary::reset`]s.
#[derive(Debug)]
pub struct DictMatrixBuilder<'a> {
    dict: &'a mut ItemDictionary,
    ids: Vec<u16>,
    offsets: Vec<u32>,
    weights: Vec<u64>,
    overflowed: bool,
}

impl<'a> DictMatrixBuilder<'a> {
    /// Builder over `dict`.
    pub fn new(dict: &'a mut ItemDictionary) -> DictMatrixBuilder<'a> {
        DictMatrixBuilder::with_capacity(dict, 0, 0)
    }

    /// Builder over `dict` with pre-sized buffers for `rows` rows of
    /// about `items_per_row` items.
    pub fn with_capacity(
        dict: &'a mut ItemDictionary,
        rows: usize,
        items_per_row: usize,
    ) -> DictMatrixBuilder<'a> {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        DictMatrixBuilder {
            dict,
            ids: Vec::with_capacity(rows * items_per_row),
            offsets,
            weights: Vec::with_capacity(rows),
            overflowed: false,
        }
    }

    /// Append one transaction, interning its items. Ids are sorted and
    /// deduplicated in place inside the flat buffer (rows hold ascending
    /// *dense ids*, which for a warm dictionary is insertion order, not
    /// item order — the miners only need a consistent total order).
    ///
    /// # Panics
    /// Panics when the flat id buffer outgrows `u32` offsets, like
    /// [`MatrixBuilder::push_row`].
    pub fn push_row(&mut self, row: impl IntoIterator<Item = Item>, weight: u64) {
        if !self.overflowed {
            let start = self.ids.len();
            for item in row {
                match self.dict.intern(item) {
                    Some(id) => self.ids.push(id),
                    None => {
                        self.overflowed = true;
                        self.ids.truncate(start);
                        break;
                    }
                }
            }
            if !self.overflowed {
                let start_len = self.ids.len();
                self.ids[start..].sort_unstable();
                let mut write = start;
                for read in start..start_len {
                    if write == start || self.ids[read] != self.ids[write - 1] {
                        self.ids[write] = self.ids[read];
                        write += 1;
                    }
                }
                self.ids.truncate(write);
            }
        }
        let offset = u32::try_from(self.ids.len()).expect("matrix item buffer exceeds u32 offsets");
        self.offsets.push(offset);
        self.weights.push(weight);
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.weights.len()
    }

    /// Whether interning has overflowed the id space (build will fail).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Freeze into a matrix sharing the dictionary's views, or `None`
    /// when the dictionary overflowed while pushing rows.
    pub fn build(self) -> Option<TransactionMatrix> {
        let DictMatrixBuilder { dict, ids, offsets, weights, overflowed } = self;
        if overflowed {
            return None;
        }
        let (items, lookup) = dict.shared_views();
        let mut item_supports = vec![0u64; items.len()];
        for (r, w) in weights.iter().enumerate() {
            for &id in &ids[offsets[r] as usize..offsets[r + 1] as usize] {
                item_supports[id as usize] += w;
            }
        }
        let (total_weight, uniform_weight) = weight_stats(&weights);
        Some(TransactionMatrix {
            cols: Arc::new(Columns {
                dict: items,
                lookup,
                offsets,
                ids,
                bitsets: Mutex::new(HashMap::new()),
                pairs: Mutex::new(HashMap::new()),
            }),
            weights: Arc::new(weights),
            total_weight,
            uniform_weight,
            item_supports: Arc::new(item_supports),
            pair_supports: Arc::new(Mutex::new(HashMap::new())),
            dropped_items: 0,
            dropped_max_support: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn iset(vals: &[u64]) -> Itemset {
        Itemset::new(vals.iter().map(|&v| Item(v)).collect())
    }

    fn matrix(rows: &[(&[u64], u64)]) -> TransactionMatrix {
        let mut b = MatrixBuilder::new();
        for (vals, w) in rows {
            b.push_row(vals.iter().map(|&v| Item(v)), *w);
        }
        b.build()
    }

    #[test]
    fn builder_sorts_and_dedups_rows() {
        let m = matrix(&[(&[5, 1, 3, 1, 5], 2)]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.row(0).len(), 3);
        assert_eq!(m.itemset_of(m.row(0)), iset(&[1, 3, 5]));
        assert_eq!(m.weight(0), 2);
    }

    #[test]
    fn dictionary_is_sorted_and_ids_follow_item_order() {
        let m = matrix(&[(&[30, 10], 1), (&[20], 1)]);
        assert_eq!(m.item_universe(), vec![Item(10), Item(20), Item(30)]);
        assert_eq!(m.id_of(Item(10)), Some(0));
        assert_eq!(m.id_of(Item(20)), Some(1));
        assert_eq!(m.id_of(Item(30)), Some(2));
        assert_eq!(m.id_of(Item(99)), None);
        // Rows hold ascending ids.
        assert_eq!(m.row(0), &[0, 2]);
    }

    #[test]
    fn item_supports_are_weighted_level1_counts() {
        let m = matrix(&[(&[1, 2], 10), (&[1], 5), (&[2], 0)]);
        assert_eq!(m.item_supports()[m.id_of(Item(1)).unwrap() as usize], 15);
        assert_eq!(m.item_supports()[m.id_of(Item(2)).unwrap() as usize], 10);
        assert_eq!(m.total_weight(), 15);
    }

    #[test]
    fn support_of_matches_row_oriented_reference() {
        let rows: &[(&[u64], u64)] = &[(&[1, 2], 10), (&[1, 3], 5), (&[2, 3], 2), (&[1, 2, 3], 1)];
        let m = matrix(rows);
        let txs: TransactionSet = rows.iter().map(|(vals, w)| t(vals, *w)).collect();
        for set in [
            iset(&[]),
            iset(&[1]),
            iset(&[1, 2]),
            iset(&[1, 2, 3]),
            iset(&[3]),
            iset(&[4]),
            iset(&[1, 4]),
        ] {
            assert_eq!(m.support_of(&set), txs.support_of(&set), "itemset {set}");
        }
    }

    #[test]
    fn from_transaction_set_roundtrip() {
        let txs: TransactionSet = vec![t(&[1, 2], 3), t(&[2, 3], 4)].into_iter().collect();
        let m = TransactionMatrix::from(&txs);
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_weight(), 7);
        assert_eq!(m.item_universe(), txs.item_universe());
    }

    #[test]
    fn with_weights_shares_structure() {
        let m = matrix(&[(&[1, 2], 7), (&[2], 3)]);
        let unit = m.unit_weights();
        assert_eq!(unit.total_weight(), 2);
        assert_eq!(unit.support_of(&iset(&[2])), 2);
        // Original untouched; structure shared.
        assert_eq!(m.support_of(&iset(&[2])), 10);
        assert_eq!(unit.item_universe(), m.item_universe());
    }

    #[test]
    fn bitsets_cover_the_right_tids_and_are_cached() {
        let m = matrix(&[(&[1], 1), (&[2], 1), (&[1, 2], 1)]);
        let id1 = m.id_of(Item(1)).unwrap();
        let id2 = m.id_of(Item(2)).unwrap();
        let bits = m.tid_bitsets(&[id1, id2]);
        assert_eq!(bits[0][0], 0b101);
        assert_eq!(bits[1][0], 0b110);
        // Second call returns the same allocation.
        let again = m.tid_bitsets(&[id1]);
        assert!(Arc::ptr_eq(&bits[0], &again[0]));
        // The cache is shared with re-weighted views.
        let heavy = m.with_weights(vec![5, 5, 5]);
        let shared = heavy.tid_bitsets(&[id1]);
        assert!(Arc::ptr_eq(&bits[0], &shared[0]));
        assert_eq!(heavy.support_of_bits(&shared[0]), 10);
    }

    #[test]
    fn pair_join_matches_support_of_and_is_cached() {
        let m = matrix(&[(&[1, 2], 3), (&[1], 1), (&[1, 2], 4), (&[2], 9)]);
        let id1 = m.id_of(Item(1)).unwrap();
        let id2 = m.id_of(Item(2)).unwrap();
        let (bits, support) = m.pair_join(id1, id2);
        assert_eq!(bits[0], 0b101);
        assert_eq!(support, 7);
        assert_eq!(support, m.support_of(&iset(&[1, 2])));
        // Operand order is normalized; the bitset Arc is shared.
        let (again, support_again) = m.pair_join(id2, id1);
        assert!(Arc::ptr_eq(&bits, &again));
        assert_eq!(support_again, 7);
        // A re-weighted view shares the bitset but recomputes support.
        let unit = m.unit_weights();
        let (unit_bits, unit_support) = unit.pair_join(id1, id2);
        assert!(Arc::ptr_eq(&bits, &unit_bits));
        assert_eq!(unit_support, 2);
        // And the original view's cached support is untouched.
        assert_eq!(m.pair_join(id1, id2).1, 7);
    }

    #[test]
    fn weighted_popcount_uniform_and_ragged() {
        let uniform = matrix(&[(&[1], 4), (&[1], 4), (&[2], 4)]);
        let id = uniform.id_of(Item(1)).unwrap();
        let bits = uniform.tid_bitsets(&[id]);
        assert_eq!(uniform.support_of_bits(&bits[0]), 8);
        let ragged = matrix(&[(&[1], 1), (&[1], 100), (&[2], 7)]);
        let id = ragged.id_of(Item(1)).unwrap();
        let bits = ragged.tid_bitsets(&[id]);
        assert_eq!(ragged.support_of_bits(&bits[0]), 101);
    }

    #[test]
    fn empty_matrix() {
        let m = TransactionMatrix::empty();
        assert!(m.is_empty());
        assert_eq!(m.total_weight(), 0);
        assert_eq!(m.n_items(), 0);
        assert_eq!(m.support_of(&iset(&[1])), 0);
        assert_eq!(m.support_of(&iset(&[])), 0);
    }

    #[test]
    fn bitset_words_spans_many_words() {
        let rows: Vec<(Vec<u64>, u64)> = (0..130).map(|i| (vec![1, 10 + i % 3], 1)).collect();
        let mut b = MatrixBuilder::new();
        for (vals, w) in &rows {
            b.push_row(vals.iter().map(|&v| Item(v)), *w);
        }
        let m = b.build();
        assert_eq!(m.bitset_words(), 3);
        assert_eq!(m.support_of(&iset(&[1])), 130);
        assert_eq!(m.support_of(&iset(&[1, 10])), 44); // tids 0, 3, 6, … < 130
    }

    #[test]
    fn capacity_overflow_drops_least_frequent_items() {
        // Two heavy items in every row plus one unique item per row, with
        // more distinct items than the dictionary can hold. The unique
        // item sorts *between* the heavy ones, so dropping it from a row
        // exercises the offset rewrite (rows shrink mid-buffer).
        let rows = TransactionMatrix::CAPACITY + 100;
        let mut b = MatrixBuilder::with_capacity(rows, 3);
        for r in 0..rows {
            b.push_row([Item(0), Item(1_000 + r as u64), Item(u64::MAX)], 1);
        }
        let m = b.build();
        assert_eq!(m.n_items(), TransactionMatrix::CAPACITY);
        assert_eq!(m.dropped_items(), 102); // rows + 2 distinct - CAPACITY
        assert_eq!(m.dropped_max_support(), 1);
        // The heavy items survive with exact support — including the
        // *pair*, whose support walks the remapped rows via bitsets
        // (guards the row/offset rewrite under dropped items).
        assert_eq!(m.support_of(&iset(&[0])), rows as u64);
        assert_eq!(m.support_of(&iset(&[0, u64::MAX])), rows as u64);
        // Every remapped row is still sorted, duplicate-free, and holds
        // both heavy items (surviving uniques keep exactly 3 ids).
        for (ids, _) in m.rows() {
            assert!(ids.len() == 2 || ids.len() == 3, "row len {}", ids.len());
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "row not strictly sorted");
            assert_eq!(m.item(ids[0]), Item(0));
            assert_eq!(m.item(*ids.last().unwrap()), Item(u64::MAX));
        }
        // Mining a *full* dictionary must not wrap the u16 id space:
        // every miner still sees all 65,536 ids (regression test — the
        // heavy item mines fine above the dropped tail's support).
        let config = crate::MiningConfig {
            min_support: crate::support::MinSupport::Absolute(rows as u64),
            ..crate::MiningConfig::default()
        };
        for algorithm in
            [crate::Algorithm::Apriori, crate::Algorithm::FpGrowth, crate::Algorithm::Eclat]
        {
            let mined = algorithm.miner().mine(&m, &config);
            // {0}, {MAX} and the pair are the only itemsets at the
            // threshold; canonical order puts the longer pair first.
            assert_eq!(mined.len(), 3, "{algorithm}");
            assert_eq!(mined[0].itemset, iset(&[0, u64::MAX]), "{algorithm}");
            assert!(mined.iter().all(|f| f.support == rows as u64), "{algorithm}");
        }
    }

    #[test]
    fn warm_builder_matches_cold_build() {
        let rows: &[(&[u64], u64)] =
            &[(&[30, 10], 2), (&[20, 30], 5), (&[10, 20, 30], 1), (&[40], 7)];
        let cold = matrix(rows);
        let mut dict = ItemDictionary::new();
        let mut b = DictMatrixBuilder::with_capacity(&mut dict, rows.len(), 3);
        for (vals, w) in rows {
            b.push_row(vals.iter().map(|&v| Item(v)), *w);
        }
        let warm = b.build().expect("no overflow");
        // Warm ids follow insertion order (30 first), not item order …
        assert_eq!(warm.item(0), Item(30));
        assert_eq!(warm.id_of(Item(10)), Some(1));
        // … but every item-level observable agrees with the cold build.
        assert_eq!(warm.item_universe(), cold.item_universe());
        assert_eq!(warm.total_weight(), cold.total_weight());
        for set in [iset(&[10]), iset(&[10, 30]), iset(&[20, 30]), iset(&[10, 20, 30]), iset(&[99])]
        {
            assert_eq!(warm.support_of(&set), cold.support_of(&set), "itemset {set}");
        }
        // And so does every miner, bit for bit.
        let config = crate::MiningConfig {
            min_support: crate::support::MinSupport::Absolute(1),
            ..crate::MiningConfig::default()
        };
        for algorithm in
            [crate::Algorithm::Apriori, crate::Algorithm::FpGrowth, crate::Algorithm::Eclat]
        {
            assert_eq!(
                algorithm.miner().mine(&warm, &config),
                algorithm.miner().mine(&cold, &config),
                "{algorithm}"
            );
        }
    }

    #[test]
    fn warm_ids_are_stable_across_windows_and_stale_items_never_mine() {
        let mut dict = ItemDictionary::new();
        let mut b = DictMatrixBuilder::new(&mut dict);
        b.push_row([Item(7), Item(3)], 1);
        let first = b.build().expect("no overflow");
        let id7 = first.id_of(Item(7)).unwrap();
        assert_eq!(dict.take_stats(), (0, 2));

        // Second window: one repeat, one new item, Item(3) absent.
        let mut b = DictMatrixBuilder::new(&mut dict);
        b.push_row([Item(7), Item(9)], 2);
        let second = b.build().expect("no overflow");
        assert_eq!(second.id_of(Item(7)), Some(id7), "interned id must be stable");
        assert_eq!(dict.take_stats(), (1, 1));
        // The dictionary is a superset of the window: the stale item is
        // present with support 0 and never reaches a mined result.
        assert_eq!(second.n_items(), 3);
        assert_eq!(second.support_of(&iset(&[3])), 0);
        let config = crate::MiningConfig {
            min_support: crate::support::MinSupport::Absolute(1),
            ..crate::MiningConfig::default()
        };
        let mined = crate::Algorithm::Eclat.miner().mine(&second, &config);
        assert!(mined.iter().all(|f| !f.itemset.items().contains(&Item(3))), "{mined:?}");
    }

    #[test]
    fn dict_overflow_fails_build_and_reset_opens_a_new_epoch() {
        let mut dict = ItemDictionary::new();
        for i in 0..TransactionMatrix::CAPACITY as u64 {
            assert!(dict.intern(Item(i)).is_some());
        }
        assert_eq!(dict.intern(Item(u64::MAX)), None, "id space exhausted");
        assert!(dict.intern(Item(5)).is_some(), "existing items still intern");
        let mut b = DictMatrixBuilder::new(&mut dict);
        b.push_row([Item(1), Item(u64::MAX)], 1);
        b.push_row([Item(2)], 1);
        assert!(b.overflowed());
        assert!(b.build().is_none(), "overflowed build must not produce a matrix");
        assert_eq!(dict.epoch(), 0);
        dict.reset();
        assert_eq!(dict.epoch(), 1);
        assert!(dict.is_empty());
        let mut b = DictMatrixBuilder::new(&mut dict);
        b.push_row([Item(1), Item(u64::MAX)], 1);
        let m = b.build().expect("fresh epoch has room");
        assert_eq!(m.n_items(), 2);
        assert_eq!(m.support_of(&iset(&[1, u64::MAX])), 1);
    }
}

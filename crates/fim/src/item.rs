//! Items and itemsets.
//!
//! The miner is deliberately decoupled from flow semantics: an [`Item`] is
//! an opaque 64-bit value (convention: an 8-bit *tag* naming the dimension
//! plus a 32-bit payload — `anomex-core` maps srcIP/dstIP/srcPort/dstPort
//! feature values into this space). An [`Itemset`] is a sorted, duplicate-
//! free set of items with the subset/join algebra Apriori needs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An opaque mining item.
///
/// Ordering is plain `u64` order; with the tag in the high bits, items
/// group by dimension, which keeps itemsets readable and joins cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Item(pub u64);

impl Item {
    /// Encode a `(tag, payload)` pair.
    pub fn encode(tag: u8, payload: u32) -> Item {
        Item((u64::from(tag) << 32) | u64::from(payload))
    }

    /// The dimension tag.
    pub fn tag(self) -> u8 {
        ((self.0 >> 32) & 0xFF) as u8
    }

    /// The 32-bit payload.
    pub fn payload(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tag(), self.payload())
    }
}

/// A sorted, duplicate-free set of items.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Itemset {
        Itemset { items: Vec::new() }
    }

    /// Build from any item collection (sorts and dedups).
    pub fn new(mut items: Vec<Item>) -> Itemset {
        items.sort_unstable();
        items.dedup();
        Itemset { items }
    }

    /// Build from a single item.
    pub fn single(item: Item) -> Itemset {
        Itemset { items: vec![item] }
    }

    /// The items in sorted order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `item` is a member (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other` (sorted merge scan).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        let mut oi = other.items.iter();
        'outer: for item in &self.items {
            for o in oi.by_ref() {
                match o.cmp(item) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether all items of `self` appear in the sorted slice `items`.
    pub fn is_subset_of_sorted(&self, items: &[Item]) -> bool {
        let mut oi = items.iter();
        'outer: for item in &self.items {
            for o in oi.by_ref() {
                match o.cmp(item) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// New itemset with `item` added.
    pub fn with(&self, item: Item) -> Itemset {
        let mut items = self.items.clone();
        match items.binary_search(&item) {
            Ok(_) => {}
            Err(pos) => items.insert(pos, item),
        }
        Itemset { items }
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        items.extend_from_slice(&self.items);
        items.extend_from_slice(&other.items);
        Itemset::new(items)
    }

    /// The Apriori prefix join: if `self` and `other` are k-sets sharing
    /// their first k-1 items, the (k+1)-set union; otherwise `None`.
    ///
    /// Requires `self < other` in lexicographic order to avoid duplicates.
    pub fn apriori_join(&self, other: &Itemset) -> Option<Itemset> {
        let k = self.items.len();
        if k == 0 || other.items.len() != k {
            return None;
        }
        if self.items[..k - 1] != other.items[..k - 1] {
            return None;
        }
        if self.items[k - 1] >= other.items[k - 1] {
            return None;
        }
        let mut items = self.items.clone();
        items.push(other.items[k - 1]);
        Some(Itemset { items })
    }

    /// All (k-1)-subsets of a k-set, for the Apriori prune step.
    pub fn proper_subsets(&self) -> Vec<Itemset> {
        (0..self.items.len())
            .map(|skip| {
                let items = self
                    .items
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &it)| (i != skip).then_some(it))
                    .collect();
                Itemset { items }
            })
            .collect()
    }
}

impl FromIterator<Item> for Itemset {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Itemset {
        Itemset::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u64]) -> Itemset {
        Itemset::new(vals.iter().map(|&v| Item(v)).collect())
    }

    #[test]
    fn encode_decode_tag_payload() {
        let item = Item::encode(3, 0xDEADBEEF);
        assert_eq!(item.tag(), 3);
        assert_eq!(item.payload(), 0xDEADBEEF);
        // Ordering groups by tag first.
        assert!(Item::encode(0, u32::MAX) < Item::encode(1, 0));
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.items(), &[Item(1), Item(3), Item(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn subset_relation() {
        let small = set(&[1, 3]);
        let big = set(&[1, 2, 3, 4]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(set(&[]).is_subset_of(&big));
        assert!(!set(&[5]).is_subset_of(&big));
        assert!(big.is_subset_of(&big));
    }

    #[test]
    fn subset_of_sorted_slice() {
        let s = set(&[2, 4]);
        assert!(s.is_subset_of_sorted(&[Item(1), Item(2), Item(3), Item(4)]));
        assert!(!s.is_subset_of_sorted(&[Item(2), Item(3)]));
        assert!(set(&[]).is_subset_of_sorted(&[]));
    }

    #[test]
    fn with_inserts_in_order() {
        let s = set(&[1, 5]).with(Item(3));
        assert_eq!(s.items(), &[Item(1), Item(3), Item(5)]);
        // Idempotent for existing items.
        assert_eq!(s.with(Item(3)), s);
    }

    #[test]
    fn union_merges() {
        assert_eq!(set(&[1, 2]).union(&set(&[2, 3])), set(&[1, 2, 3]));
    }

    #[test]
    fn apriori_join_requires_shared_prefix() {
        let a = set(&[1, 2]);
        let b = set(&[1, 3]);
        let c = set(&[2, 3]);
        assert_eq!(a.apriori_join(&b), Some(set(&[1, 2, 3])));
        assert_eq!(a.apriori_join(&c), None); // prefix differs
        assert_eq!(b.apriori_join(&a), None); // wrong order
        assert_eq!(a.apriori_join(&a), None); // equal last items
    }

    #[test]
    fn apriori_join_singletons() {
        assert_eq!(set(&[1]).apriori_join(&set(&[2])), Some(set(&[1, 2])));
        assert_eq!(set(&[2]).apriori_join(&set(&[1])), None);
    }

    #[test]
    fn proper_subsets_enumerates_all() {
        let subs = set(&[1, 2, 3]).proper_subsets();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&set(&[1, 2])));
        assert!(subs.contains(&set(&[1, 3])));
        assert!(subs.contains(&set(&[2, 3])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(set(&[]).to_string(), "{}");
        let s = Itemset::new(vec![Item::encode(1, 7)]);
        assert_eq!(s.to_string(), "{1:7}");
    }
}

//! Self-adjusting top-k mining — the paper's parameter auto-tuning.
//!
//! A fixed minimum support cannot serve anomalies of wildly different
//! sizes: too high and a small scan produces nothing, too low and a large
//! DDoS drowns the operator in thousands of itemsets. The paper "added to
//! Apriori … the capability of automatically self-adjusting some of its
//! configuration parameters to properly select meaningful itemsets
//! depending on the anomaly being analyzed."
//!
//! This module implements that: a geometric descent from the total weight
//! followed by a bounded binary search, converging on the **largest**
//! support threshold whose *maximal* itemsets number at least `k` (or the
//! best achievable above an absolute floor). The search exploits that the
//! number of frequent itemsets is non-increasing in the threshold.
//!
//! Every round mines the **same** [`TransactionMatrix`]: the dictionary,
//! CSR rows and level-1 supports are computed once, and Eclat's bitset
//! tid-lists persist in the matrix's vertical-view cache across rounds —
//! the search re-thresholds, it does not re-scan transactions.

use crate::matrix::TransactionMatrix;
use crate::mine;
use crate::post::maximal_only;
use crate::support::{FrequentItemset, MinSupport};
use crate::{Algorithm, MiningConfig};

/// Configuration of the adaptive search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKConfig {
    /// Target number of (maximal) itemsets.
    pub k: usize,
    /// Never mine below this absolute support — guards against noise
    /// itemsets from singleton flows (paper: "meaningful itemsets").
    pub floor: u64,
    /// Cap on mining invocations during the search.
    pub max_rounds: usize,
    /// Longest itemset to mine (0 = unbounded).
    pub max_len: usize,
    /// Which algorithm performs each mining round.
    pub algorithm: Algorithm,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig { k: 10, floor: 2, max_rounds: 24, max_len: 0, algorithm: Algorithm::Apriori }
    }
}

/// Outcome of the adaptive search.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// Up to `k` maximal itemsets at the chosen threshold, canonical order.
    pub itemsets: Vec<FrequentItemset>,
    /// The threshold the search converged on.
    pub chosen_support: u64,
    /// Maximal itemsets that existed at the chosen threshold (≥ the
    /// returned count when truncated to `k`).
    pub total_found: usize,
    /// Mining invocations spent.
    pub rounds: usize,
}

/// Mine the top-k maximal itemsets with a self-adjusted support threshold.
pub fn mine_top_k(matrix: &TransactionMatrix, config: &TopKConfig) -> TopKResult {
    let total = matrix.total_weight();
    let floor = config.floor.max(1);
    let rounds = std::cell::Cell::new(0usize);

    let mine_at = |threshold: u64| -> Vec<FrequentItemset> {
        rounds.set(rounds.get() + 1);
        let mined = mine(
            matrix,
            &MiningConfig {
                algorithm: config.algorithm,
                min_support: MinSupport::Absolute(threshold),
                max_len: config.max_len,
                threads: 1,
            },
        );
        maximal_only(mined)
    };

    if total == 0 || matrix.is_empty() {
        return TopKResult {
            itemsets: Vec::new(),
            chosen_support: floor,
            total_found: 0,
            rounds: 0,
        };
    }

    // Phase 1: geometric descent from the top until enough itemsets appear
    // (or the floor is hit). Thresholds visited: total, total/2, total/4, …
    // all clamped to the floor.
    let mut hi = total.max(floor);
    let current = mine_at(hi);
    if current.len() >= config.k || hi == floor {
        return finish(current, hi, config.k, rounds.get());
    }
    let mut lo = hi;
    let mut lo_result = current;
    while rounds.get() < config.max_rounds {
        let next = (lo / 2).max(floor);
        let candidate = mine_at(next);
        // Regression guard — the "meaningful itemsets" half of the
        // paper's self-adjustment. Lowering the threshold can make noise
        // supersets frequent (e.g. an ephemeral source port repeating 8
        // times inside a 90K-flow scan); pure maximality then *displaces*
        // the high-support structure with those barely-frequent
        // supersets. Two collapse signals, either of which stops the
        // descent and keeps the previous result:
        // - total support halves: the noise covers only a sliver of what
        //   the displaced structure covered;
        // - max support drops >4x: the structure was shattered into many
        //   shards (a split into a *few* comparable sub-patterns — two
        //   scanners sharing a victim, say — passes; 100 ephemeral-port
        //   shards do not).
        let prev_total: u64 = lo_result.iter().map(|f| f.support).sum();
        let cand_total: u64 = candidate.iter().map(|f| f.support).sum();
        let prev_max: u64 = lo_result.iter().map(|f| f.support).max().unwrap_or(0);
        let cand_max: u64 = candidate.iter().map(|f| f.support).max().unwrap_or(0);
        if !lo_result.is_empty() && (cand_total < prev_total / 2 || cand_max * 4 < prev_max) {
            return finish(lo_result, lo, config.k, rounds.get());
        }
        if candidate.len() >= config.k {
            // Phase 2 will search in (next, lo).
            lo = next;
            lo_result = candidate;
            break;
        }
        let at_floor = next == floor;
        lo = next;
        lo_result = candidate;
        if at_floor {
            // Even the floor can't reach k: return what the floor gives.
            return finish(lo_result, lo, config.k, rounds.get());
        }
    }
    if lo_result.len() < config.k {
        // Ran out of rounds during descent.
        return finish(lo_result, lo, config.k, rounds.get());
    }

    // Phase 2: binary search for a large threshold in [lo, hi] whose count
    // still reaches k. The count of *maximal* itemsets is not strictly
    // monotone in the threshold (a superset dropping out can expose several
    // new maximal sets), so this is a best-effort refinement: `best` always
    // holds a threshold that did reach k, which is what gets returned.
    let mut best = (lo, lo_result);
    while rounds.get() < config.max_rounds && hi - best.0 > 1 {
        let mid = best.0 + (hi - best.0) / 2;
        let candidate = mine_at(mid);
        if candidate.len() >= config.k {
            best = (mid, candidate);
        } else {
            hi = mid;
        }
    }
    let (chosen, result) = best;
    finish(result, chosen, config.k, rounds.get())
}

fn finish(
    mut itemsets: Vec<FrequentItemset>,
    chosen_support: u64,
    k: usize,
    rounds: usize,
) -> TopKResult {
    let total_found = itemsets.len();
    itemsets.truncate(k);
    TopKResult { itemsets, chosen_support, total_found, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::transaction::{Transaction, TransactionSet};

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    /// Dataset with clear scale separation: one huge pattern (support 1000),
    /// one medium (100), many small noise patterns (1-3).
    fn skewed() -> TransactionSet {
        let mut txs = Vec::new();
        for _ in 0..1000 {
            txs.push(t(&[1, 2], 1));
        }
        for _ in 0..100 {
            txs.push(t(&[10, 11], 1));
        }
        for i in 0..50 {
            txs.push(t(&[100 + i, 200 + i], 1));
        }
        TransactionSet::from_transactions(txs)
    }

    #[test]
    fn regression_guard_keeps_structure_over_noise_supersets() {
        // One dominant 2-item pattern repeated 1000x, where a third item
        // ("ephemeral port") repeats just often enough that at the floor
        // its 3-item supersets become frequent and — being maximal —
        // would displace the real pattern entirely.
        let mut txs = Vec::new();
        for i in 0..1000u64 {
            // items: {1, 2, 500 + i % 100} -> each 3-item superset has
            // support 10, the pair {1,2} support 1000.
            txs.push(t(&[1, 2, 500 + i % 100], 1));
        }
        let txs = TransactionSet::from_transactions(txs);
        let r =
            mine_top_k(&txs.to_matrix(), &TopKConfig { k: 10, floor: 2, ..TopKConfig::default() });
        // Without the guard this returns ten support-10 noise supersets;
        // with it, the support-1000 pair survives.
        assert!(
            r.itemsets.iter().any(|f| f.support == 1000),
            "dominant pattern displaced: {:?}",
            r.itemsets.iter().map(|f| (f.itemset.to_string(), f.support)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn finds_the_dominant_pattern_with_k1() {
        let r = mine_top_k(&skewed().to_matrix(), &TopKConfig { k: 1, ..TopKConfig::default() });
        assert_eq!(r.itemsets.len(), 1);
        assert_eq!(r.itemsets[0].itemset, crate::item::Itemset::new(vec![Item(1), Item(2)]));
        assert_eq!(r.itemsets[0].support, 1000);
        // Threshold stayed high: noise never surfaced.
        assert!(r.chosen_support > 100, "chosen {}", r.chosen_support);
    }

    #[test]
    fn k2_descends_to_capture_the_medium_pattern() {
        let r = mine_top_k(&skewed().to_matrix(), &TopKConfig { k: 2, ..TopKConfig::default() });
        assert!(r.itemsets.len() >= 2);
        assert_eq!(r.itemsets[1].support, 100);
        assert!(r.chosen_support <= 100);
        assert!(r.chosen_support > 3, "noise leaked: chosen {}", r.chosen_support);
    }

    #[test]
    fn floor_prevents_noise_harvest() {
        // Ask for far more itemsets than exist above the floor.
        let r = mine_top_k(
            &skewed().to_matrix(),
            &TopKConfig { k: 500, floor: 5, ..TopKConfig::default() },
        );
        // Only the two real patterns have support >= 5.
        assert_eq!(r.chosen_support, 5);
        assert!(r.total_found < 500);
        assert!(r.itemsets.iter().all(|f| f.support >= 5));
    }

    #[test]
    fn floor_one_harvests_everything_when_asked() {
        let r = mine_top_k(
            &skewed().to_matrix(),
            &TopKConfig { k: 60, floor: 1, ..TopKConfig::default() },
        );
        // 52 maximal patterns exist ({1,2}, {10,11}, 50 noise pairs).
        assert_eq!(r.total_found, 52);
    }

    #[test]
    fn empty_transactions() {
        let r = mine_top_k(&TransactionSet::new().to_matrix(), &TopKConfig::default());
        assert!(r.itemsets.is_empty());
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn rounds_stay_bounded() {
        let r = mine_top_k(
            &skewed().to_matrix(),
            &TopKConfig { k: 3, max_rounds: 5, ..TopKConfig::default() },
        );
        assert!(r.rounds <= 5, "rounds {}", r.rounds);
    }

    #[test]
    fn all_algorithms_agree() {
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            let r = mine_top_k(
                &skewed().to_matrix(),
                &TopKConfig { k: 2, algorithm, ..TopKConfig::default() },
            );
            assert_eq!(r.itemsets.len(), 2, "{algorithm:?}");
            assert_eq!(r.itemsets[0].support, 1000, "{algorithm:?}");
            assert_eq!(r.itemsets[1].support, 100, "{algorithm:?}");
        }
    }

    #[test]
    fn weighted_topk_prefers_heavy_patterns() {
        // Two flows with a million packets vs a thousand unit flows.
        let mut txs = vec![t(&[1, 2], 500_000), t(&[1, 2], 500_000)];
        for i in 0..1000 {
            txs.push(t(&[50 + (i % 20), 100 + (i % 7)], 1));
        }
        let set = TransactionSet::from_transactions(txs);
        let r = mine_top_k(&set.to_matrix(), &TopKConfig { k: 1, ..TopKConfig::default() });
        assert_eq!(r.itemsets[0].itemset, crate::item::Itemset::new(vec![Item(1), Item(2)]));
        assert_eq!(r.itemsets[0].support, 1_000_000);
    }

    #[test]
    fn returned_itemsets_are_maximal() {
        let r = mine_top_k(&skewed().to_matrix(), &TopKConfig { k: 10, ..TopKConfig::default() });
        for a in &r.itemsets {
            for b in &r.itemsets {
                if a != b {
                    assert!(
                        !a.itemset.is_subset_of(&b.itemset),
                        "{} subsumed by {}",
                        a.itemset,
                        b.itemset
                    );
                }
            }
        }
    }
}

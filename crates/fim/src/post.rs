//! Itemset post-processing: maximal / closed filtering.
//!
//! Raw frequent-itemset output is heavily redundant — every subset of a
//! frequent itemset is itself reported. The paper's system presents
//! operators a *compact* summary (Table 1 shows four itemsets, not their
//! dozens of subsets), which corresponds to keeping **maximal** itemsets
//! (no frequent proper superset). **Closed** itemsets (no superset with
//! equal support) are the lossless middle ground, used when exact supports
//! of sub-patterns matter.

use std::collections::HashMap;

use crate::support::{sort_canonical, FrequentItemset};

/// Keep only maximal itemsets: those with no frequent proper superset.
pub fn maximal_only(mut results: Vec<FrequentItemset>) -> Vec<FrequentItemset> {
    // Sort by length descending; any superset of x is strictly longer, so
    // it suffices to compare against already-kept longer sets.
    results.sort_by_key(|f| std::cmp::Reverse(f.itemset.len()));
    let mut kept: Vec<FrequentItemset> = Vec::new();
    for candidate in results {
        let dominated = kept.iter().any(|k| candidate.itemset.is_subset_of(&k.itemset));
        if !dominated {
            kept.push(candidate);
        }
    }
    sort_canonical(&mut kept);
    kept
}

/// Keep only closed itemsets: those with no proper superset of *equal*
/// support.
pub fn closed_only(results: Vec<FrequentItemset>) -> Vec<FrequentItemset> {
    // Group by support; within a support class, subset-domination decides.
    let mut by_support: HashMap<u64, Vec<&FrequentItemset>> = HashMap::new();
    for f in &results {
        by_support.entry(f.support).or_default().push(f);
    }
    let mut kept: Vec<FrequentItemset> = Vec::new();
    for f in &results {
        let class = &by_support[&f.support];
        let dominated = class.iter().any(|other| {
            other.itemset.len() > f.itemset.len() && f.itemset.is_subset_of(&other.itemset)
        });
        if !dominated {
            kept.push(f.clone());
        }
    }
    sort_canonical(&mut kept);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, Itemset};

    fn f(vals: &[u64], support: u64) -> FrequentItemset {
        FrequentItemset::new(Itemset::new(vals.iter().map(|&v| Item(v)).collect()), support)
    }

    #[test]
    fn maximal_removes_all_subsets() {
        let input = vec![
            f(&[1], 6),
            f(&[2], 5),
            f(&[3], 4),
            f(&[1, 2], 4),
            f(&[1, 3], 3),
            f(&[1, 2, 3], 2),
        ];
        let out = maximal_only(input);
        assert_eq!(out, vec![f(&[1, 2, 3], 2)]);
    }

    #[test]
    fn maximal_keeps_incomparable_sets() {
        let input = vec![f(&[1, 2], 4), f(&[3, 4], 4), f(&[1], 9), f(&[3], 9)];
        let out = maximal_only(input);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&f(&[1, 2], 4)));
        assert!(out.contains(&f(&[3, 4], 4)));
    }

    #[test]
    fn closed_keeps_supersets_with_equal_support_only() {
        // {1} support 5, {1,2} support 5 → {1} not closed.
        // {3} support 9, {3,4} support 2 → both closed.
        let input = vec![f(&[1], 5), f(&[1, 2], 5), f(&[3], 9), f(&[3, 4], 2)];
        let out = closed_only(input);
        assert_eq!(out.len(), 3);
        assert!(!out.contains(&f(&[1], 5)));
        assert!(out.contains(&f(&[1, 2], 5)));
        assert!(out.contains(&f(&[3], 9)));
        assert!(out.contains(&f(&[3, 4], 2)));
    }

    #[test]
    fn closed_is_superset_of_maximal() {
        let input = vec![f(&[1], 6), f(&[2], 6), f(&[1, 2], 6), f(&[3], 4), f(&[1, 3], 2)];
        let maximal = maximal_only(input.clone());
        let closed = closed_only(input);
        for m in &maximal {
            assert!(closed.contains(m), "maximal {m} missing from closed");
        }
        assert!(closed.len() >= maximal.len());
    }

    #[test]
    fn empty_input() {
        assert!(maximal_only(vec![]).is_empty());
        assert!(closed_only(vec![]).is_empty());
    }

    #[test]
    fn single_itemset_is_both() {
        let input = vec![f(&[1, 2], 3)];
        assert_eq!(maximal_only(input.clone()), input);
        assert_eq!(closed_only(input.clone()), input);
    }
}

//! Weighted transactions.
//!
//! The paper's key extension over vanilla Apriori is computing itemset
//! support **in packets as well as flows**. Both are captured by one
//! abstraction: a [`Transaction`] carries a *weight*; support of an itemset
//! is the sum of weights of transactions containing it. Flow-support sets
//! every weight to 1; packet-support sets the weight to the flow's packet
//! counter.

use serde::{Deserialize, Serialize};

use crate::item::{Item, Itemset};

/// One transaction: a sorted item list plus a support weight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    items: Vec<Item>,
    weight: u64,
}

impl Transaction {
    /// Build a transaction (items are sorted and deduped).
    pub fn new(items: Vec<Item>, weight: u64) -> Transaction {
        let set = Itemset::new(items);
        Transaction { items: set.items().to_vec(), weight }
    }

    /// Unit-weight transaction.
    pub fn unit(items: Vec<Item>) -> Transaction {
        Transaction::new(items, 1)
    }

    /// Sorted items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Support weight.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Whether this transaction contains the whole itemset.
    pub fn contains(&self, itemset: &Itemset) -> bool {
        itemset.is_subset_of_sorted(&self.items)
    }
}

/// A collection of transactions with cached total weight.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionSet {
    transactions: Vec<Transaction>,
    total_weight: u64,
}

impl TransactionSet {
    /// Empty set.
    pub fn new() -> TransactionSet {
        TransactionSet::default()
    }

    /// Build from transactions.
    pub fn from_transactions(transactions: Vec<Transaction>) -> TransactionSet {
        let total_weight = transactions.iter().map(Transaction::weight).sum();
        TransactionSet { transactions, total_weight }
    }

    /// Add one transaction.
    pub fn push(&mut self, t: Transaction) {
        self.total_weight += t.weight();
        self.transactions.push(t);
    }

    /// The transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Sum of all weights (the denominator of relative support).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Exact support of an arbitrary itemset by linear scan. The reference
    /// the mining algorithms are tested against, and the tool used for
    /// one-off queries.
    pub fn support_of(&self, itemset: &Itemset) -> u64 {
        self.transactions.iter().filter(|t| t.contains(itemset)).map(Transaction::weight).sum()
    }

    /// Distinct items across all transactions, sorted.
    pub fn item_universe(&self) -> Vec<Item> {
        let mut items: Vec<Item> =
            self.transactions.iter().flat_map(|t| t.items().iter().copied()).collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Dictionary-encode into the columnar mining representation.
    pub fn to_matrix(&self) -> crate::matrix::TransactionMatrix {
        crate::matrix::TransactionMatrix::from(self)
    }

    /// Re-weight every transaction to 1 (flow-support view).
    pub fn unit_weights(&self) -> TransactionSet {
        TransactionSet::from_transactions(
            self.transactions.iter().map(|t| Transaction::new(t.items().to_vec(), 1)).collect(),
        )
    }
}

impl FromIterator<Transaction> for TransactionSet {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> TransactionSet {
        TransactionSet::from_transactions(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn iset(vals: &[u64]) -> Itemset {
        Itemset::new(vals.iter().map(|&v| Item(v)).collect())
    }

    #[test]
    fn transaction_sorts_items() {
        let tx = t(&[3, 1, 2, 1], 5);
        assert_eq!(tx.items(), &[Item(1), Item(2), Item(3)]);
        assert_eq!(tx.weight(), 5);
    }

    #[test]
    fn contains_subset() {
        let tx = t(&[1, 2, 3], 1);
        assert!(tx.contains(&iset(&[1, 3])));
        assert!(!tx.contains(&iset(&[1, 4])));
        assert!(tx.contains(&iset(&[])));
    }

    #[test]
    fn total_weight_tracks_pushes() {
        let mut set = TransactionSet::new();
        assert!(set.is_empty());
        set.push(t(&[1], 10));
        set.push(t(&[2], 20));
        assert_eq!(set.total_weight(), 30);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn support_of_sums_weights() {
        let set =
            TransactionSet::from_transactions(vec![t(&[1, 2], 10), t(&[1, 3], 5), t(&[2, 3], 2)]);
        assert_eq!(set.support_of(&iset(&[1])), 15);
        assert_eq!(set.support_of(&iset(&[1, 2])), 10);
        assert_eq!(set.support_of(&iset(&[4])), 0);
        // Empty itemset is contained in everything.
        assert_eq!(set.support_of(&iset(&[])), 17);
    }

    #[test]
    fn item_universe_sorted_unique() {
        let set = TransactionSet::from_transactions(vec![t(&[3, 1], 1), t(&[2, 3], 1)]);
        assert_eq!(set.item_universe(), vec![Item(1), Item(2), Item(3)]);
    }

    #[test]
    fn unit_weights_resets_to_flow_support() {
        let set = TransactionSet::from_transactions(vec![t(&[1], 100), t(&[1], 50)]);
        let unit = set.unit_weights();
        assert_eq!(unit.total_weight(), 2);
        assert_eq!(unit.support_of(&iset(&[1])), 2);
        // Original untouched.
        assert_eq!(set.support_of(&iset(&[1])), 150);
    }

    #[test]
    fn from_iterator() {
        let set: TransactionSet = (0..5).map(|i| t(&[i], i + 1)).collect();
        assert_eq!(set.len(), 5);
        assert_eq!(set.total_weight(), 15);
    }

    #[test]
    fn zero_weight_transactions_are_allowed_but_inert() {
        let set = TransactionSet::from_transactions(vec![t(&[1], 0), t(&[1], 3)]);
        assert_eq!(set.support_of(&iset(&[1])), 3);
        assert_eq!(set.total_weight(), 3);
    }
}

//! Multiply-mix hashing for the encode hot path.
//!
//! The warm-dictionary encode does four [`ItemDictionary`] map lookups
//! per flow, which makes the hasher the dominant per-flow cost. Items
//! are single `u64`s with well-spread payloads (tagged feature values),
//! so SipHash's keyed collision resistance buys nothing here — a
//! Fibonacci-style multiply (the FxHash construction) hashes in a few
//! cycles and pushes its entropy into the high bits, which is where
//! `std`'s hashbrown tables read their control tags from.
//!
//! Not DoS-resistant by design; only use for maps keyed by values the
//! process itself produced (dense ids, interned items), never for
//! attacker-controlled strings.
//!
//! [`ItemDictionary`]: crate::matrix::ItemDictionary

use std::hash::{BuildHasherDefault, Hasher};

/// One-shot multiply hasher (FxHash construction): state is folded with
/// xor then multiplied by a high-entropy odd constant per write.
#[derive(Default)]
pub struct FxHasher(u64);

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` defaulted to the multiply hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.mix(x);
    }

    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.mix(x as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn sequential_keys_spread_high_bits() {
        // hashbrown's control tags come from the top bits; sequential
        // keys (dense ids, port sweeps) must not collapse there.
        let mut tags = std::collections::HashSet::new();
        for x in 0u64..1_000 {
            let mut h = FxHasher::default();
            h.write_u64(x);
            tags.insert(h.finish() >> 57);
        }
        assert!(tags.len() > 100, "only {} distinct control tags", tags.len());
    }

    #[test]
    fn map_roundtrips() {
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        for x in 0..10_000u64 {
            map.insert(x, x * 2);
        }
        for x in 0..10_000u64 {
            assert_eq!(map.get(&x), Some(&(x * 2)));
        }
    }
}

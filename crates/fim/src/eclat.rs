//! Eclat — vertical bitset miner.
//!
//! Mines by intersecting per-item transaction-id sets instead of scanning
//! rows: the support of `X ∪ {i}` is the weighted population count of the
//! intersection of their tid sets. The tid sets are **bitsets** pulled
//! from the matrix's cached vertical views, so an intersection is a
//! word-at-a-time AND over `rows/64` machine words (the old implementation
//! merged sorted `Vec<u32>` tid lists element by element). A third
//! independent implementation for cross-checking, and the fastest of the
//! three on dense, low-threshold workloads.

use std::sync::Arc;

use crate::matrix::TransactionMatrix;
use crate::support::{sort_canonical, FrequentItemset};
use crate::{Miner, MiningConfig};

/// Vertical bitset-intersection miner ([`Miner`] implementation).
#[derive(Debug, Clone, Copy, Default)]
pub struct Eclat;

impl Miner for Eclat {
    fn mine(&self, matrix: &TransactionMatrix, config: &MiningConfig) -> Vec<FrequentItemset> {
        let threshold = config.min_support.resolve(matrix.total_weight());
        let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };
        let mut results = Vec::new();
        if matrix.is_empty() {
            return results;
        }

        // Frequent 1-items in ascending id (= ascending item) order for a
        // deterministic DFS; their bitsets come from the shared cache.
        let root_ids: Vec<u16> = (0..matrix.n_items())
            .filter(|&id| matrix.item_supports()[id] >= threshold)
            .map(|id| id as u16)
            .collect();
        let root_bits = matrix.tid_bitsets(&root_ids);
        let roots: Vec<Node> = root_ids
            .iter()
            .zip(root_bits)
            .map(|(&id, bits)| Node {
                id,
                support: matrix.item_supports()[id as usize],
                bits: Bits::Shared(bits),
            })
            .collect();

        let mut prefix: Vec<u16> = Vec::new();
        for (i, node) in roots.iter().enumerate() {
            prefix.push(node.id);
            results.push(FrequentItemset::new(matrix.itemset_of(&prefix), node.support));
            if max_len > 1 {
                dfs(matrix, &mut prefix, node, &roots[i + 1..], threshold, max_len, &mut results);
            }
            prefix.pop();
        }
        sort_canonical(&mut results);
        results
    }
}

/// A DFS node: an extension item with the prefix∪{id} tid bitset.
struct Node {
    id: u16,
    support: u64,
    bits: Bits,
}

/// Root bitsets are shared out of the matrix cache; intersections own
/// their words.
enum Bits {
    Shared(Arc<Vec<u64>>),
    Owned(Vec<u64>),
}

impl Bits {
    fn words(&self) -> &[u64] {
        match self {
            Bits::Shared(arc) => arc,
            Bits::Owned(vec) => vec,
        }
    }
}

/// Extend `prefix` (with tid bitset `node.bits`) by each right-sibling.
fn dfs(
    matrix: &TransactionMatrix,
    prefix: &mut Vec<u16>,
    node: &Node,
    siblings: &[Node],
    threshold: u64,
    max_len: usize,
    out: &mut Vec<FrequentItemset>,
) {
    // Materialize this level's frequent extensions first, then recurse with
    // each extension's right-siblings — classic prefix-tree DFS.
    let mut extensions: Vec<Node> = Vec::new();
    for sibling in siblings {
        let joined: Vec<u64> =
            node.bits.words().iter().zip(sibling.bits.words()).map(|(a, b)| a & b).collect();
        let support = matrix.support_of_bits(&joined);
        if support >= threshold {
            extensions.push(Node { id: sibling.id, support, bits: Bits::Owned(joined) });
        }
    }
    for (i, ext) in extensions.iter().enumerate() {
        prefix.push(ext.id);
        out.push(FrequentItemset::new(matrix.itemset_of(prefix), ext.support));
        if prefix.len() < max_len {
            dfs(matrix, prefix, ext, &extensions[i + 1..], threshold, max_len, out);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::fpgrowth::FpGrowth;
    use crate::item::{Item, Itemset};
    use crate::support::MinSupport;
    use crate::transaction::{Transaction, TransactionSet};

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn classic_dataset() -> TransactionSet {
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn cfg(abs: u64) -> MiningConfig {
        MiningConfig { min_support: MinSupport::Absolute(abs), ..MiningConfig::default() }
    }

    fn run(txs: &TransactionSet, abs: u64) -> Vec<FrequentItemset> {
        Eclat.mine(&txs.to_matrix(), &cfg(abs))
    }

    #[test]
    fn three_way_agreement_on_textbook_example() {
        let matrix = classic_dataset().to_matrix();
        let ec = Eclat.mine(&matrix, &cfg(2));
        let ap = Apriori.mine(&matrix, &cfg(2));
        let fp = FpGrowth.mine(&matrix, &cfg(2));
        assert_eq!(ec, ap);
        assert_eq!(ec, fp);
        assert_eq!(ec.len(), 13);
    }

    #[test]
    fn weighted_supports() {
        let txs =
            TransactionSet::from_transactions(vec![t(&[1, 2], 7), t(&[1, 2], 5), t(&[2], 100)]);
        let results = run(&txs, 12);
        let find = |vals: &[u64]| {
            let set = Itemset::new(vals.iter().map(|&v| Item(v)).collect());
            results.iter().find(|f| f.itemset == set).map(|f| f.support)
        };
        assert_eq!(find(&[2]), Some(112));
        assert_eq!(find(&[1]), Some(12));
        assert_eq!(find(&[1, 2]), Some(12));
    }

    #[test]
    fn max_len_respected() {
        let txs = classic_dataset();
        let results = Eclat.mine(&txs.to_matrix(), &MiningConfig { max_len: 1, ..cfg(2) });
        assert!(results.iter().all(|f| f.itemset.len() == 1));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn empty_input() {
        assert!(run(&TransactionSet::new(), 1).is_empty());
    }

    #[test]
    fn zero_weight_tids_contribute_nothing() {
        let txs = TransactionSet::from_transactions(vec![t(&[1], 0), t(&[1], 2)]);
        let results = run(&txs, 1);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].support, 2);
    }

    #[test]
    fn repeated_mining_reuses_cached_bitsets() {
        // Mining the same matrix at descending thresholds (the top-k
        // pattern) must give consistent results; the bitset cache makes
        // later rounds cheaper but must not change output.
        let matrix = classic_dataset().to_matrix();
        let first = Eclat.mine(&matrix, &cfg(4));
        let second = Eclat.mine(&matrix, &cfg(2));
        let third = Eclat.mine(&matrix, &cfg(4));
        assert_eq!(first, third);
        assert!(second.len() > first.len());
    }
}

//! Eclat — vertical bitset miner, with a dEclat diffset deep path and a
//! pair-join cache.
//!
//! Mines by intersecting per-item transaction-id sets instead of scanning
//! rows: the support of `X ∪ {i}` is the weighted population count of the
//! intersection of their tid sets. The tid sets are **bitsets** pulled
//! from the matrix's cached vertical views, so an intersection is a
//! word-at-a-time AND over `rows/64` machine words (the old implementation
//! merged sorted `Vec<u32>` tid lists element by element). A third
//! independent implementation for cross-checking, and the fastest of the
//! three on dense, low-threshold workloads.
//!
//! Two optional fast paths, both on in [`Eclat::DEFAULT`] and both off in
//! [`Eclat::LEGACY`] (the agreement tests pin the outputs identical):
//!
//! - **Pair-join cache** ([`Eclat::pair_cache`]): 2-itemset tid sets and
//!   supports come from [`TransactionMatrix::pair_join`], which caches
//!   them *on the matrix* — the top-k support-threshold search re-mines
//!   the same matrix many times, and pairs dominate each round's join
//!   work, so later rounds replace the AND + weighted popcount with a
//!   map hit.
//! - **Diffsets** ([`Eclat::diffsets`]): at depth ≥ 3 a candidate's tid
//!   set is represented as the dEclat *difference* from its prefix
//!   parent (`d(PXY) = t(PX) \ t(PY)`), and support is maintained
//!   arithmetically: `support(PXY) = support(PX) − w(d(PXY))`. Deeper
//!   levels subtract sibling diffsets (`d(PXY…Z) = d(PZ) \ d(PXY…)`),
//!   so the deeper the search goes in dense traffic, the sparser the
//!   words the weighted popcount has to walk.

use std::sync::Arc;

use crate::matrix::TransactionMatrix;
use crate::support::{sort_canonical, FrequentItemset};
use crate::{Miner, MiningConfig};

/// Vertical bitset-intersection miner ([`Miner`] implementation).
///
/// The flags select the fast paths documented on the module; every
/// configuration mines the identical result set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eclat {
    /// Represent deep (length ≥ 3) candidates as dEclat diffsets from
    /// their prefix parent, with support maintained arithmetically.
    pub diffsets: bool,
    /// Serve 2-itemset joins from the matrix-resident pair cache
    /// ([`TransactionMatrix::pair_join`]).
    pub pair_cache: bool,
}

impl Eclat {
    /// Both fast paths on — the production configuration.
    pub const DEFAULT: Eclat = Eclat { diffsets: true, pair_cache: true };
    /// Plain tidset Eclat, exactly the pre-diffset implementation; the
    /// agreement baseline and the honest benchmark comparison point.
    pub const LEGACY: Eclat = Eclat { diffsets: false, pair_cache: false };
}

impl Default for Eclat {
    fn default() -> Eclat {
        Eclat::DEFAULT
    }
}

impl Miner for Eclat {
    fn mine(&self, matrix: &TransactionMatrix, config: &MiningConfig) -> Vec<FrequentItemset> {
        let threshold = config.min_support.resolve(matrix.total_weight());
        let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };
        let mut results = Vec::new();
        if matrix.is_empty() {
            return results;
        }

        // Frequent 1-items in ascending id order for a deterministic
        // DFS; their bitsets come from the shared cache. (For a warm
        // dictionary id order is insertion order, not item order — the
        // canonical sort at the end makes the output independent of it.)
        let root_ids: Vec<u16> = (0..matrix.n_items())
            .filter(|&id| matrix.item_supports()[id] >= threshold)
            .map(|id| id as u16)
            .collect();
        let root_bits = matrix.tid_bitsets(&root_ids);
        let roots: Vec<Node> = root_ids
            .iter()
            .zip(root_bits)
            .map(|(&id, bits)| Node {
                id,
                support: matrix.item_supports()[id as usize],
                bits: Bits::Shared(bits),
                diff: false,
            })
            .collect();

        let mut prefix: Vec<u16> = Vec::new();
        for (i, node) in roots.iter().enumerate() {
            prefix.push(node.id);
            results.push(FrequentItemset::new(matrix.itemset_of(&prefix), node.support));
            if max_len > 1 {
                self.dfs(
                    matrix,
                    &mut prefix,
                    node,
                    &roots[i + 1..],
                    threshold,
                    max_len,
                    &mut results,
                );
            }
            prefix.pop();
        }
        sort_canonical(&mut results);
        results
    }
}

/// A DFS node: an extension item with either the prefix∪{id} tid bitset
/// (`diff == false`) or its dEclat diffset from the prefix parent
/// (`diff == true`, support already exact).
struct Node {
    id: u16,
    support: u64,
    bits: Bits,
    diff: bool,
}

/// Root and cached-pair bitsets are shared out of the matrix caches;
/// intersections and differences own their words.
enum Bits {
    Shared(Arc<Vec<u64>>),
    Owned(Vec<u64>),
}

impl Bits {
    fn words(&self) -> &[u64] {
        match self {
            Bits::Shared(arc) => arc,
            Bits::Owned(vec) => vec,
        }
    }
}

impl Eclat {
    /// Extend `prefix` (carried by `node`) by each right-sibling.
    ///
    /// Every sibling in one group shares the same representation (all
    /// were materialized by the same parent call), so the joins are
    /// uniform per level: tidset AND at depths the diffset path hasn't
    /// reached, `t(PX) \ t(PY)` at the tidset→diffset transition, and
    /// `d(PY) \ d(PX)` once both operands are diffsets.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        matrix: &TransactionMatrix,
        prefix: &mut Vec<u16>,
        node: &Node,
        siblings: &[Node],
        threshold: u64,
        max_len: usize,
        out: &mut Vec<FrequentItemset>,
    ) {
        // Materialize this level's frequent extensions first, then recurse
        // with each extension's right-siblings — classic prefix-tree DFS.
        let pair_level = prefix.len() == 1;
        let to_diff = self.diffsets && prefix.len() >= 2;
        let mut extensions: Vec<Node> = Vec::new();
        for sibling in siblings {
            let ext = if node.diff {
                // Both operands are diffsets from the shared prefix
                // parent: d(PXY) = d(PY) \ d(PX).
                let diffed: Vec<u64> = sibling
                    .bits
                    .words()
                    .iter()
                    .zip(node.bits.words())
                    .map(|(s, n)| s & !n)
                    .collect();
                let support = node.support - matrix.support_of_bits(&diffed);
                Node { id: sibling.id, support, bits: Bits::Owned(diffed), diff: true }
            } else if pair_level && self.pair_cache {
                let (bits, support) = matrix.pair_join(node.id, sibling.id);
                Node { id: sibling.id, support, bits: Bits::Shared(bits), diff: false }
            } else if to_diff {
                // Tidset → diffset transition: d(PXY) = t(PX) \ t(PY).
                let diffed: Vec<u64> = node
                    .bits
                    .words()
                    .iter()
                    .zip(sibling.bits.words())
                    .map(|(n, s)| n & !s)
                    .collect();
                let support = node.support - matrix.support_of_bits(&diffed);
                Node { id: sibling.id, support, bits: Bits::Owned(diffed), diff: true }
            } else {
                let joined: Vec<u64> = node
                    .bits
                    .words()
                    .iter()
                    .zip(sibling.bits.words())
                    .map(|(a, b)| a & b)
                    .collect();
                let support = matrix.support_of_bits(&joined);
                Node { id: sibling.id, support, bits: Bits::Owned(joined), diff: false }
            };
            if ext.support >= threshold {
                extensions.push(ext);
            }
        }
        for (i, ext) in extensions.iter().enumerate() {
            prefix.push(ext.id);
            out.push(FrequentItemset::new(matrix.itemset_of(prefix), ext.support));
            if prefix.len() < max_len {
                self.dfs(matrix, prefix, ext, &extensions[i + 1..], threshold, max_len, out);
            }
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::fpgrowth::FpGrowth;
    use crate::item::{Item, Itemset};
    use crate::support::MinSupport;
    use crate::transaction::{Transaction, TransactionSet};

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn classic_dataset() -> TransactionSet {
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn cfg(abs: u64) -> MiningConfig {
        MiningConfig { min_support: MinSupport::Absolute(abs), ..MiningConfig::default() }
    }

    fn run(txs: &TransactionSet, abs: u64) -> Vec<FrequentItemset> {
        Eclat::DEFAULT.mine(&txs.to_matrix(), &cfg(abs))
    }

    /// The four flag combinations, for exhaustive agreement checks.
    const CONFIGS: [Eclat; 4] = [
        Eclat::LEGACY,
        Eclat::DEFAULT,
        Eclat { diffsets: true, pair_cache: false },
        Eclat { diffsets: false, pair_cache: true },
    ];

    #[test]
    fn three_way_agreement_on_textbook_example() {
        let matrix = classic_dataset().to_matrix();
        let ec = Eclat::DEFAULT.mine(&matrix, &cfg(2));
        let ap = Apriori.mine(&matrix, &cfg(2));
        let fp = FpGrowth.mine(&matrix, &cfg(2));
        assert_eq!(ec, ap);
        assert_eq!(ec, fp);
        assert_eq!(ec.len(), 13);
    }

    #[test]
    fn every_flag_combination_mines_identically() {
        let matrix = classic_dataset().to_matrix();
        let expected = Eclat::LEGACY.mine(&matrix, &cfg(2));
        assert_eq!(expected.len(), 13);
        for config in CONFIGS {
            assert_eq!(config.mine(&matrix, &cfg(2)), expected, "{config:?}");
            // Depth-4 itemsets force two diffset-on-diffset levels.
            assert_eq!(
                config.mine(&matrix, &cfg(1)),
                Eclat::LEGACY.mine(&matrix, &cfg(1)),
                "{config:?} at threshold 1"
            );
        }
    }

    #[test]
    fn weighted_supports() {
        let txs =
            TransactionSet::from_transactions(vec![t(&[1, 2], 7), t(&[1, 2], 5), t(&[2], 100)]);
        let results = run(&txs, 12);
        let find = |vals: &[u64]| {
            let set = Itemset::new(vals.iter().map(|&v| Item(v)).collect());
            results.iter().find(|f| f.itemset == set).map(|f| f.support)
        };
        assert_eq!(find(&[2]), Some(112));
        assert_eq!(find(&[1]), Some(12));
        assert_eq!(find(&[1, 2]), Some(12));
    }

    #[test]
    fn weighted_diffset_supports_stay_exact_at_depth() {
        // Ragged weights + itemsets of length 4: the arithmetic support
        // maintenance must agree with the AND-join on every level.
        let txs = TransactionSet::from_transactions(vec![
            t(&[1, 2, 3, 4], 3),
            t(&[1, 2, 3, 4], 11),
            t(&[1, 2, 3], 5),
            t(&[1, 2, 4], 1),
            t(&[2, 3, 4], 7),
            t(&[1], 100),
        ]);
        let matrix = txs.to_matrix();
        for config in CONFIGS {
            assert_eq!(
                config.mine(&matrix, &cfg(3)),
                Eclat::LEGACY.mine(&matrix, &cfg(3)),
                "{config:?}"
            );
        }
        let deep = Itemset::new(vec![Item(1), Item(2), Item(3), Item(4)]);
        let mined = Eclat::DEFAULT.mine(&matrix, &cfg(3));
        assert_eq!(mined.iter().find(|f| f.itemset == deep).map(|f| f.support), Some(14));
    }

    #[test]
    fn max_len_respected() {
        let txs = classic_dataset();
        let results = Eclat::DEFAULT.mine(&txs.to_matrix(), &MiningConfig { max_len: 1, ..cfg(2) });
        assert!(results.iter().all(|f| f.itemset.len() == 1));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn empty_input() {
        assert!(run(&TransactionSet::new(), 1).is_empty());
    }

    #[test]
    fn zero_weight_tids_contribute_nothing() {
        let txs = TransactionSet::from_transactions(vec![t(&[1], 0), t(&[1], 2)]);
        let results = run(&txs, 1);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].support, 2);
    }

    #[test]
    fn repeated_mining_reuses_cached_bitsets() {
        // Mining the same matrix at descending thresholds (the top-k
        // pattern) must give consistent results; the bitset and pair
        // caches make later rounds cheaper but must not change output.
        let matrix = classic_dataset().to_matrix();
        let first = Eclat::DEFAULT.mine(&matrix, &cfg(4));
        let second = Eclat::DEFAULT.mine(&matrix, &cfg(2));
        let third = Eclat::DEFAULT.mine(&matrix, &cfg(4));
        assert_eq!(first, third);
        assert!(second.len() > first.len());
    }
}

//! Eclat — vertical-layout baseline.
//!
//! Mines with transaction-id (tid) list intersections instead of horizontal
//! scans: the support of `X ∪ {i}` is the weight of the intersection of
//! their tidlists. A third independent implementation for cross-checking,
//! and the fastest of the three on dense, low-threshold workloads.

use std::collections::HashMap;

use crate::item::{Item, Itemset};
use crate::support::{sort_canonical, FrequentItemset, MinSupport};
use crate::transaction::TransactionSet;

/// Eclat tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EclatConfig {
    /// Support threshold.
    pub min_support: MinSupport,
    /// Longest itemset to mine (0 = unbounded).
    pub max_len: usize,
}

impl Default for EclatConfig {
    fn default() -> Self {
        EclatConfig { min_support: MinSupport::Fraction(0.01), max_len: 0 }
    }
}

/// Mine all frequent itemsets with Eclat.
///
/// Results are in canonical order and agree exactly with
/// [`crate::apriori`] / [`crate::fpgrowth`].
pub fn eclat(txs: &TransactionSet, config: &EclatConfig) -> Vec<FrequentItemset> {
    let threshold = config.min_support.resolve(txs);
    let max_len = if config.max_len == 0 { usize::MAX } else { config.max_len };

    // Vertical layout: per-item sorted tidlists; tid weights on the side.
    let weights: Vec<u64> = txs.transactions().iter().map(|t| t.weight()).collect();
    let mut tidlists: HashMap<Item, Vec<u32>> = HashMap::new();
    for (tid, t) in txs.transactions().iter().enumerate() {
        if t.weight() == 0 {
            continue;
        }
        for &item in t.items() {
            tidlists.entry(item).or_default().push(tid as u32);
        }
    }

    let support = |tids: &[u32]| -> u64 { tids.iter().map(|&t| weights[t as usize]).sum() };

    // Frequent 1-items, ascending item order for deterministic DFS.
    let mut roots: Vec<(Item, Vec<u32>, u64)> = tidlists
        .into_iter()
        .filter_map(|(item, tids)| {
            let s = support(&tids);
            (s >= threshold).then_some((item, tids, s))
        })
        .collect();
    roots.sort_by_key(|&(item, _, _)| item);

    let mut results = Vec::new();
    for (i, (item, tids, s)) in roots.iter().enumerate() {
        let prefix = Itemset::single(*item);
        results.push(FrequentItemset::new(prefix.clone(), *s));
        if max_len > 1 {
            dfs(&prefix, tids, &roots[i + 1..], threshold, max_len, &weights, &mut results);
        }
    }
    sort_canonical(&mut results);
    results
}

/// Extend `prefix` (with tidlist `tids`) by each right-sibling item.
fn dfs(
    prefix: &Itemset,
    tids: &[u32],
    siblings: &[(Item, Vec<u32>, u64)],
    threshold: u64,
    max_len: usize,
    weights: &[u64],
    out: &mut Vec<FrequentItemset>,
) {
    // Materialize this level's frequent extensions first, then recurse with
    // each extension's right-siblings — classic prefix-tree DFS.
    let mut extensions: Vec<(Item, Vec<u32>, u64)> = Vec::new();
    for (item, sibling_tids, _) in siblings {
        let joined = intersect(tids, sibling_tids);
        let s: u64 = joined.iter().map(|&t| weights[t as usize]).sum();
        if s >= threshold {
            extensions.push((*item, joined, s));
        }
    }
    for (i, (item, joined, s)) in extensions.iter().enumerate() {
        let extended = prefix.with(*item);
        out.push(FrequentItemset::new(extended.clone(), *s));
        if extended.len() < max_len {
            dfs(&extended, joined, &extensions[i + 1..], threshold, max_len, weights, out);
        }
    }
}

/// Intersection of two sorted tid lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::fpgrowth::{fpgrowth, FpGrowthConfig};
    use crate::transaction::Transaction;

    fn t(vals: &[u64], w: u64) -> Transaction {
        Transaction::new(vals.iter().map(|&v| Item(v)).collect(), w)
    }

    fn classic_dataset() -> TransactionSet {
        TransactionSet::from_transactions(vec![
            t(&[1, 2, 5], 1),
            t(&[2, 4], 1),
            t(&[2, 3], 1),
            t(&[1, 2, 4], 1),
            t(&[1, 3], 1),
            t(&[2, 3], 1),
            t(&[1, 3], 1),
            t(&[1, 2, 3, 5], 1),
            t(&[1, 2, 3], 1),
        ])
    }

    fn run(txs: &TransactionSet, abs: u64) -> Vec<FrequentItemset> {
        eclat(txs, &EclatConfig { min_support: MinSupport::Absolute(abs), max_len: 0 })
    }

    #[test]
    fn intersect_basics() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<u32>::new());
    }

    #[test]
    fn three_way_agreement_on_textbook_example() {
        let txs = classic_dataset();
        let ec = run(&txs, 2);
        let ap = apriori(
            &txs,
            &AprioriConfig { min_support: MinSupport::Absolute(2), max_len: 0, threads: 1 },
        );
        let fp =
            fpgrowth(&txs, &FpGrowthConfig { min_support: MinSupport::Absolute(2), max_len: 0 });
        assert_eq!(ec, ap);
        assert_eq!(ec, fp);
    }

    #[test]
    fn weighted_supports() {
        let txs =
            TransactionSet::from_transactions(vec![t(&[1, 2], 7), t(&[1, 2], 5), t(&[2], 100)]);
        let results = run(&txs, 12);
        let find = |vals: &[u64]| {
            let set = Itemset::new(vals.iter().map(|&v| Item(v)).collect());
            results.iter().find(|f| f.itemset == set).map(|f| f.support)
        };
        assert_eq!(find(&[2]), Some(112));
        assert_eq!(find(&[1]), Some(12));
        assert_eq!(find(&[1, 2]), Some(12));
    }

    #[test]
    fn max_len_respected() {
        let txs = classic_dataset();
        let results =
            eclat(&txs, &EclatConfig { min_support: MinSupport::Absolute(2), max_len: 1 });
        assert!(results.iter().all(|f| f.itemset.len() == 1));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn empty_input() {
        assert!(run(&TransactionSet::new(), 1).is_empty());
    }

    #[test]
    fn zero_weight_tids_excluded() {
        let txs = TransactionSet::from_transactions(vec![t(&[1], 0), t(&[1], 2)]);
        let results = run(&txs, 1);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].support, 2);
    }
}

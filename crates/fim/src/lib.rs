//! # anomex-fim
//!
//! Frequent itemset mining for anomaly extraction — the algorithmic core
//! underneath the paper's "extended Apriori".
//!
//! - [`item`] — opaque items and the sorted-set algebra ([`Itemset`]).
//! - [`transaction`] — **weighted** row-oriented transactions: the
//!   ergonomic builder and linear-scan reference the miners are tested
//!   against.
//! - [`matrix`] — the columnar [`TransactionMatrix`] every miner runs on:
//!   dictionary-encoded dense `u16` ids, CSR rows, shared weight views and
//!   cached bitset tid-lists.
//! - [`apriori`] — the levelwise miner the paper uses (optionally
//!   crossbeam-parallel candidate counting).
//! - [`fpgrowth`] / [`eclat`] — independent baseline miners; all three
//!   implement [`Miner`] and produce identical output (enforced by
//!   property tests and a golden fixture).
//! - [`post`] — maximal/closed itemset compaction for operator-readable
//!   summaries.
//! - [`topk`] — the self-adjusting minimum-support search ("automatically
//!   self-adjusting … configuration parameters", §1 of the paper); mines
//!   one matrix at many thresholds, reusing its vertical views.
//!
//! ## Example
//!
//! ```
//! use anomex_fim::prelude::*;
//!
//! let txs: TransactionSet = (0..100)
//!     .map(|i| Transaction::new(vec![Item(1), Item(2), Item(10 + i % 3)], 1))
//!     .collect();
//! let matrix = txs.to_matrix();
//! let result = mine(
//!     &matrix,
//!     &MiningConfig {
//!         algorithm: Algorithm::Apriori,
//!         min_support: MinSupport::Absolute(100),
//!         max_len: 0,
//!         threads: 1,
//!     },
//! );
//! // {1}, {2} and {1,2} all appear in every transaction.
//! assert_eq!(result.len(), 3);
//! assert!(result.iter().all(|f| f.support == 100));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apriori;
pub mod eclat;
pub mod fpgrowth;
pub mod hash;
pub mod item;
pub mod matrix;
pub mod post;
pub mod support;
pub mod topk;
pub mod transaction;

use serde::{Deserialize, Serialize};

pub use apriori::Apriori;
pub use eclat::Eclat;
pub use fpgrowth::FpGrowth;
pub use item::{Item, Itemset};
pub use matrix::{DictMatrixBuilder, ItemDictionary, MatrixBuilder, TransactionMatrix};
pub use post::{closed_only, maximal_only};
pub use support::{sort_canonical, FrequentItemset, MinSupport};
pub use topk::{mine_top_k, TopKConfig, TopKResult};
pub use transaction::{Transaction, TransactionSet};

/// Which mining algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Levelwise candidate generation (the paper's miner).
    Apriori,
    /// Pattern growth over an FP-tree.
    FpGrowth,
    /// Vertical bitset tid-list intersection.
    Eclat,
}

impl Algorithm {
    /// The [`Miner`] implementation behind this algorithm.
    pub fn miner(self) -> &'static dyn Miner {
        match self {
            Algorithm::Apriori => &Apriori,
            Algorithm::FpGrowth => &FpGrowth,
            Algorithm::Eclat => &Eclat::DEFAULT,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Apriori => "apriori",
            Algorithm::FpGrowth => "fp-growth",
            Algorithm::Eclat => "eclat",
        })
    }
}

/// Algorithm-agnostic mining configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningConfig {
    /// Which algorithm runs.
    pub algorithm: Algorithm,
    /// Support threshold.
    pub min_support: MinSupport,
    /// Longest itemset to mine (0 = unbounded).
    pub max_len: usize,
    /// Worker threads (Apriori counting only; others ignore it).
    pub threads: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Fraction(0.01),
            max_len: 0,
            threads: 1,
        }
    }
}

/// A frequent-itemset miner over the columnar [`TransactionMatrix`].
///
/// All implementations return identical, canonically ordered results
/// ([`sort_canonical`]) with exact weighted supports — the three built-in
/// miners cross-check one another in the equivalence property tests.
pub trait Miner {
    /// Mine all frequent itemsets of `matrix` under `config`.
    ///
    /// Implementations ignore `config.algorithm` (the caller picked this
    /// miner already); [`mine`] is the dispatching front door.
    fn mine(&self, matrix: &TransactionMatrix, config: &MiningConfig) -> Vec<FrequentItemset>;
}

/// Mine all frequent itemsets with the configured algorithm.
///
/// All three algorithms return identical, canonically ordered results.
pub fn mine(matrix: &TransactionMatrix, config: &MiningConfig) -> Vec<FrequentItemset> {
    config.algorithm.miner().mine(matrix, config)
}

/// One-stop imports.
pub mod prelude {
    pub use crate::item::{Item, Itemset};
    pub use crate::matrix::{DictMatrixBuilder, ItemDictionary, MatrixBuilder, TransactionMatrix};
    pub use crate::post::{closed_only, maximal_only};
    pub use crate::support::{FrequentItemset, MinSupport};
    pub use crate::topk::{mine_top_k, TopKConfig, TopKResult};
    pub use crate::transaction::{Transaction, TransactionSet};
    pub use crate::{mine, Algorithm, Miner, MiningConfig};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_runs_each_algorithm() {
        let txs: TransactionSet =
            (0..10).map(|_| Transaction::new(vec![Item(1), Item(2)], 1)).collect();
        let matrix = txs.to_matrix();
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            let out = mine(
                &matrix,
                &MiningConfig {
                    algorithm,
                    min_support: MinSupport::Absolute(10),
                    ..MiningConfig::default()
                },
            );
            assert_eq!(out.len(), 3, "{algorithm}");
        }
    }

    #[test]
    fn trait_objects_dispatch_like_the_enum() {
        let txs: TransactionSet =
            (0..5).map(|_| Transaction::new(vec![Item(1), Item(2)], 2)).collect();
        let matrix = txs.to_matrix();
        let config =
            MiningConfig { min_support: MinSupport::Absolute(10), ..MiningConfig::default() };
        let reference = Apriori.mine(&matrix, &config);
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            assert_eq!(algorithm.miner().mine(&matrix, &config), reference, "{algorithm}");
        }
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Apriori.to_string(), "apriori");
        assert_eq!(Algorithm::FpGrowth.to_string(), "fp-growth");
        assert_eq!(Algorithm::Eclat.to_string(), "eclat");
    }
}

//! # anomex-fim
//!
//! Frequent itemset mining for anomaly extraction — the algorithmic core
//! underneath the paper's "extended Apriori".
//!
//! - [`item`] — opaque items and the sorted-set algebra ([`Itemset`]).
//! - [`transaction`] — **weighted** transactions: the paper's flow-support
//!   vs packet-support extension falls out of one weight field.
//! - [`apriori`] — the levelwise miner the paper uses (optionally
//!   crossbeam-parallel candidate counting).
//! - [`fpgrowth`] / [`eclat`] — independent baseline miners; all three
//!   produce identical output (enforced by property tests).
//! - [`post`] — maximal/closed itemset compaction for operator-readable
//!   summaries.
//! - [`topk`] — the self-adjusting minimum-support search ("automatically
//!   self-adjusting … configuration parameters", §1 of the paper).
//!
//! ## Example
//!
//! ```
//! use anomex_fim::prelude::*;
//!
//! let txs: TransactionSet = (0..100)
//!     .map(|i| Transaction::new(vec![Item(1), Item(2), Item(10 + i % 3)], 1))
//!     .collect();
//! let result = mine(
//!     &txs,
//!     &MiningConfig {
//!         algorithm: Algorithm::Apriori,
//!         min_support: MinSupport::Absolute(100),
//!         max_len: 0,
//!         threads: 1,
//!     },
//! );
//! // {1}, {2} and {1,2} all appear in every transaction.
//! assert_eq!(result.len(), 3);
//! assert!(result.iter().all(|f| f.support == 100));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apriori;
pub mod eclat;
pub mod fpgrowth;
pub mod item;
pub mod post;
pub mod support;
pub mod topk;
pub mod transaction;

use serde::{Deserialize, Serialize};

pub use apriori::{apriori, AprioriConfig};
pub use eclat::{eclat, EclatConfig};
pub use fpgrowth::{fpgrowth, FpGrowthConfig};
pub use item::{Item, Itemset};
pub use post::{closed_only, maximal_only};
pub use support::{sort_canonical, FrequentItemset, MinSupport};
pub use topk::{mine_top_k, TopKConfig, TopKResult};
pub use transaction::{Transaction, TransactionSet};

/// Which mining algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Levelwise candidate generation (the paper's miner).
    Apriori,
    /// Pattern growth over an FP-tree.
    FpGrowth,
    /// Vertical tidlist intersection.
    Eclat,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Apriori => "apriori",
            Algorithm::FpGrowth => "fp-growth",
            Algorithm::Eclat => "eclat",
        })
    }
}

/// Algorithm-agnostic mining configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningConfig {
    /// Which algorithm runs.
    pub algorithm: Algorithm,
    /// Support threshold.
    pub min_support: MinSupport,
    /// Longest itemset to mine (0 = unbounded).
    pub max_len: usize,
    /// Worker threads (Apriori counting only; others ignore it).
    pub threads: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Fraction(0.01),
            max_len: 0,
            threads: 1,
        }
    }
}

/// Mine all frequent itemsets with the configured algorithm.
///
/// All three algorithms return identical, canonically ordered results.
pub fn mine(txs: &TransactionSet, config: &MiningConfig) -> Vec<FrequentItemset> {
    match config.algorithm {
        Algorithm::Apriori => apriori(
            txs,
            &AprioriConfig {
                min_support: config.min_support,
                max_len: config.max_len,
                threads: config.threads,
            },
        ),
        Algorithm::FpGrowth => fpgrowth(
            txs,
            &FpGrowthConfig { min_support: config.min_support, max_len: config.max_len },
        ),
        Algorithm::Eclat => {
            eclat(txs, &EclatConfig { min_support: config.min_support, max_len: config.max_len })
        }
    }
}

/// One-stop imports.
pub mod prelude {
    pub use crate::item::{Item, Itemset};
    pub use crate::post::{closed_only, maximal_only};
    pub use crate::support::{FrequentItemset, MinSupport};
    pub use crate::topk::{mine_top_k, TopKConfig, TopKResult};
    pub use crate::transaction::{Transaction, TransactionSet};
    pub use crate::{mine, Algorithm, MiningConfig};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_runs_each_algorithm() {
        let txs: TransactionSet =
            (0..10).map(|_| Transaction::new(vec![Item(1), Item(2)], 1)).collect();
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            let out = mine(
                &txs,
                &MiningConfig {
                    algorithm,
                    min_support: MinSupport::Absolute(10),
                    ..MiningConfig::default()
                },
            );
            assert_eq!(out.len(), 3, "{algorithm}");
        }
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Apriori.to_string(), "apriori");
        assert_eq!(Algorithm::FpGrowth.to_string(), "fp-growth");
        assert_eq!(Algorithm::Eclat.to_string(), "eclat");
    }
}

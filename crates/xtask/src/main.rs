//! Workspace maintenance tasks, run as `cargo run -p xtask -- <task>`.
//!
//! Two tasks:
//!
//! - **`metrics-doc [--check]`** renders `METRICS.md` at the workspace
//!   root from the streaming pipeline's metric catalog
//!   (`anomex_stream::metrics::CATALOG`) — the committed reference for
//!   every counter, gauge and histogram the pipeline can record. With
//!   `--check` (the CI mode) it verifies the committed file matches
//!   instead of writing, so the doc can never drift from the code.
//! - **`audit-unsafe [--check]`**, the unsafe audit described next.
//!
//! The **unsafe audit** is a comment- and
//! string-aware scan of every `.rs` file in the workspace that
//!
//! - fails (exit 1) on any `unsafe` keyword without an adjacent
//!   justification — a `// SAFETY:` comment block directly above (or
//!   inline before) the keyword, or a `# Safety` doc section for
//!   `unsafe fn` declarations — and
//! - regenerates `UNSAFE_INVENTORY.md` at the workspace root, the
//!   committed ledger of every unsafe site and its one-line
//!   justification.
//!
//! `--check` (the CI mode) additionally refuses to touch the tree: it
//! verifies the committed inventory matches the regenerated one and
//! fails on drift, so the ledger can never go stale.
//!
//! The audit complements the compiler-enforced half of the policy
//! (workspace lints `unsafe_op_in_unsafe_fn` and clippy's
//! `undocumented_unsafe_blocks`, both deny): the clippy lint only sees
//! lintable crate targets, while this scan covers every source file in
//! the tree — vendored crates, test support, build scripts — with one
//! uniform adjacency rule and a reviewable inventory as output.

// This file *talks about* SAFETY comments constantly (it implements
// the audit), which trips the lint that polices stray ones.
#![allow(clippy::unnecessary_safety_comment)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit-unsafe") => {
            let check_only = args.iter().any(|a| a == "--check");
            if let Some(unknown) = args[1..].iter().find(|a| *a != "--check") {
                eprintln!("xtask: unknown audit-unsafe flag `{unknown}` (only --check)");
                return ExitCode::FAILURE;
            }
            audit_unsafe(check_only)
        }
        Some("metrics-doc") => {
            let check_only = args.iter().any(|a| a == "--check");
            if let Some(unknown) = args[1..].iter().find(|a| *a != "--check") {
                eprintln!("xtask: unknown metrics-doc flag `{unknown}` (only --check)");
                return ExitCode::FAILURE;
            }
            metrics_doc(check_only)
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `audit-unsafe` or `metrics-doc`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "xtask: no task given (try `audit-unsafe [--check]` or `metrics-doc [--check]`)"
            );
            ExitCode::FAILURE
        }
    }
}

/// Render `METRICS.md` from the pipeline's metric catalog; `--check`
/// verifies the committed file instead of writing it.
fn metrics_doc(check_only: bool) -> ExitCode {
    let doc = render_metrics_doc(anomex_stream::metrics::CATALOG);
    let path = workspace_root().join("METRICS.md");
    if check_only {
        let committed = std::fs::read_to_string(&path).unwrap_or_default();
        if committed != doc {
            eprintln!(
                "xtask: METRICS.md is stale — regenerate it with \
                 `cargo run -p xtask -- metrics-doc` and commit the result"
            );
            return ExitCode::FAILURE;
        }
    } else if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("xtask: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "metrics-doc: {} metric(s) documented{}",
        anomex_stream::metrics::CATALOG.len(),
        if check_only { " (METRICS.md up to date)" } else { " (METRICS.md written)" },
    );
    ExitCode::SUCCESS
}

fn render_metrics_doc(catalog: &[anomex_obs::MetricDef]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Pipeline Metrics");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Every metric the streaming pipeline can record, grouped by \
         stage — generated from `anomex_stream::metrics::CATALOG` by \
         `cargo run -p xtask -- metrics-doc` and verified in CI with \
         `--check`. Names containing `*` are templates instantiated per \
         dynamic member (one per registered detector). Counters are \
         always live; gauges, histograms and stage timers record only \
         while `MetricsConfig::enabled` is on."
    );
    let mut stage = "";
    for def in catalog {
        if def.stage != stage {
            stage = def.stage;
            let _ = writeln!(out);
            let _ = writeln!(out, "## `{stage}`");
            let _ = writeln!(out);
            let _ = writeln!(out, "| Metric | Kind | Unit | Description |");
            let _ = writeln!(out, "|---|---|---|---|");
        }
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} |",
            def.name,
            def.kind.as_str(),
            def.unit,
            def.help.replace('|', "\\|"),
        );
    }
    out
}

/// One `unsafe` keyword occurrence in real code (not comments/strings).
struct UnsafeSite {
    /// Workspace-relative path, `/`-separated.
    path: String,
    /// 1-based line of the `unsafe` keyword.
    line: usize,
    /// What the keyword introduces: `block`, `impl`, `fn`, `trait`.
    form: &'static str,
    /// First line of the adjacent justification, if any.
    justification: Option<String>,
}

fn audit_unsafe(check_only: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut sites = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(root.join(path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        scan_file(path, &source, &mut sites);
    }

    let undocumented: Vec<&UnsafeSite> =
        sites.iter().filter(|s| s.justification.is_none()).collect();
    for site in &undocumented {
        eprintln!(
            "xtask: {}:{}: `unsafe` {} without an adjacent `// SAFETY:` comment{}",
            site.path,
            site.line,
            site.form,
            if site.form == "fn" { " or `# Safety` doc section" } else { "" },
        );
    }

    let inventory = render_inventory(&sites, files.len());
    let inventory_path = root.join("UNSAFE_INVENTORY.md");
    if check_only {
        let committed = std::fs::read_to_string(&inventory_path).unwrap_or_default();
        if committed != inventory {
            eprintln!(
                "xtask: UNSAFE_INVENTORY.md is stale — regenerate it with \
                 `cargo run -p xtask -- audit-unsafe` and commit the result"
            );
            return ExitCode::FAILURE;
        }
    } else if let Err(e) = std::fs::write(&inventory_path, &inventory) {
        eprintln!("xtask: cannot write {}: {e}", inventory_path.display());
        return ExitCode::FAILURE;
    }

    if !undocumented.is_empty() {
        eprintln!("xtask: audit-unsafe FAILED: {} undocumented site(s)", undocumented.len());
        return ExitCode::FAILURE;
    }
    let distinct_files =
        sites.iter().map(|s| s.path.as_str()).collect::<std::collections::BTreeSet<_>>().len();
    println!(
        "audit-unsafe: {} unsafe site(s) across {} file(s), all justified{}",
        sites.len(),
        distinct_files,
        if check_only { " (inventory up to date)" } else { " (inventory written)" },
    );
    ExitCode::SUCCESS
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root; fall back to cwd for direct
    // binary invocation outside cargo.
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).ancestors().nth(2).expect("xtask depth").to_path_buf(),
        None => std::env::current_dir().expect("cwd"),
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target` (build output) and dot-dirs are not source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).expect("under root");
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
}

/// Scan one file for `unsafe` keywords, comment- and string-aware.
fn scan_file(path: &str, source: &str, sites: &mut Vec<UnsafeSite>) {
    let code = blank_comments_and_strings(source);
    let lines: Vec<&str> = source.lines().collect();
    let bytes = code.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if code[i..].starts_with("unsafe")
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && !is_ident_byte(*bytes.get(i + 6).unwrap_or(&b' '))
        {
            let form = classify(&code[i + 6..]);
            let justification = find_justification(&lines, line - 1, form);
            sites.push(UnsafeSite { path: path.to_string(), line, form, justification });
            i += 6;
            continue;
        }
        i += 1;
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// What does the keyword introduce? Looks at the next token in the
/// already-blanked code.
fn classify(rest: &str) -> &'static str {
    let rest = rest.trim_start();
    if rest.starts_with("impl") {
        "impl"
    } else if rest.starts_with("fn") || rest.starts_with("extern") {
        // `unsafe extern "C" fn` is still a declaration form.
        "fn"
    } else if rest.starts_with("trait") {
        "trait"
    } else {
        "block"
    }
}

/// The adjacency rule: a justification is a `SAFETY:` marker in a
/// comment on the `unsafe` line itself, or anywhere in the contiguous
/// comment block directly above it (attribute lines may sit between).
/// `unsafe fn` declarations may alternatively carry a `# Safety`
/// section in their doc comment.
fn find_justification(lines: &[&str], unsafe_line: usize, form: &'static str) -> Option<String> {
    let marker = |s: &str| {
        s.find("SAFETY:").map(|at| s[at..].trim_end_matches(['*', '/', ' ']).trim().to_string())
    };
    if let Some(j) = lines.get(unsafe_line).and_then(|l| marker(l)) {
        return Some(j);
    }
    let mut i = unsafe_line;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim();
        let is_attr = t.starts_with("#[") || t.starts_with("#![");
        let is_comment =
            t.starts_with("//") || t.starts_with("/*") || t.starts_with('*') || t.ends_with("*/");
        if is_comment {
            if let Some(j) = marker(t) {
                return Some(j);
            }
            if form == "fn" && t.contains("# Safety") {
                return Some("`# Safety` doc section".to_string());
            }
            continue;
        }
        if is_attr || t.is_empty() {
            // Attributes sit between a comment and its item; blank
            // lines only end the lookback at real code.
            continue;
        }
        break;
    }
    None
}

/// Replace the contents of comments, string literals and char literals
/// with spaces, preserving newlines (so byte offsets map to the same
/// line numbers). Handles nested block comments, escapes, and raw
/// strings with arbitrary `#` fences.
fn blank_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(b, &mut out, i),
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let mut j = i + 1;
                if b[i] == b'b' && b.get(j) == Some(&b'r') {
                    j += 1;
                }
                if b.get(j) == Some(&b'\'') {
                    // b'x' byte literal.
                    i = skip_char(b, &mut out, j);
                } else {
                    let mut fences = 0usize;
                    while b.get(j) == Some(&b'#') {
                        fences += 1;
                        j += 1;
                    }
                    if b.get(j) != Some(&b'"') {
                        // Not actually a raw string (e.g. `r#ident`).
                        out[i] = b[i];
                        i += 1;
                        continue;
                    }
                    j += 1;
                    // Scan to `"` followed by `fences` hashes.
                    loop {
                        match b.get(j) {
                            None => break,
                            Some(b'\n') => {
                                out[j] = b'\n';
                                j += 1;
                            }
                            Some(b'"') => {
                                let mut k = j + 1;
                                let mut seen = 0usize;
                                while seen < fences && b.get(k) == Some(&b'#') {
                                    seen += 1;
                                    k += 1;
                                }
                                j = k;
                                if seen == fences {
                                    break;
                                }
                            }
                            Some(_) => j += 1,
                        }
                    }
                    i = j;
                }
            }
            b'\'' => i = skip_char_or_lifetime(b, &mut out, i),
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8: non-ASCII only inside blanked spans")
}

fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    // Only when not part of a longer identifier (e.g. `for`, `grab`).
    if i > 0 && is_ident_byte(b[i - 1]) {
        return false;
    }
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skip a `"..."` string starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a `'x'` char literal starting at the quote; returns the index
/// just past the closing quote.
fn skip_char(b: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `'` is ambiguous: a char literal (`'x'`, `'\n'`) or a lifetime
/// (`'a`, `'static`). A lifetime is `'` + identifier with no closing
/// quote right after.
fn skip_char_or_lifetime(b: &[u8], out: &mut [u8], i: usize) -> usize {
    let next = b.get(i + 1).copied().unwrap_or(b' ');
    if next == b'\\' || b.get(i + 2) == Some(&b'\'') {
        return skip_char(b, out, i);
    }
    if is_ident_byte(next) {
        // A lifetime; it cannot contain the reserved word `unsafe`, so
        // leaving it blanked-as-space vs kept makes no difference —
        // just step past the quote.
        return i + 1;
    }
    skip_char(b, out, i)
}

fn render_inventory(sites: &[UnsafeSite], files_scanned: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Unsafe Inventory");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Every `unsafe` site in the workspace and its justification, \
         regenerated by `cargo run -p xtask -- audit-unsafe` and verified \
         in CI with `--check`. {} site(s) across {} scanned `.rs` file(s).",
        sites.len(),
        files_scanned,
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "| Site | Form | Justification |");
    let _ = writeln!(out, "|---|---|---|");
    for s in sites {
        let mut j = s.justification.as_deref().unwrap_or("**MISSING**").to_string();
        if j.len() > 100 {
            let mut cut = 100;
            while !j.is_char_boundary(cut) {
                cut -= 1;
            }
            j.truncate(cut);
            j.push('…');
        }
        let _ =
            writeln!(out, "| `{}:{}` | {} | {} |", s.path, s.line, s.form, j.replace('|', "\\|"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(src: &str) -> Vec<(usize, &'static str, bool)> {
        let mut sites = Vec::new();
        scan_file("test.rs", src, &mut sites);
        sites.into_iter().map(|s| (s.line, s.form, s.justification.is_some())).collect()
    }

    #[test]
    fn finds_block_with_inline_and_preceding_safety() {
        let src = "fn f() {\n    // SAFETY: fine\n    unsafe { g() }\n}\n\
                   fn h() { /* SAFETY: ok */ unsafe { g() } }\n";
        assert_eq!(sites_of(src), vec![(3, "block", true), (5, "block", true)]);
    }

    #[test]
    fn flags_undocumented_block_and_impl() {
        let src = "fn f() {\n    unsafe { g() }\n}\nunsafe impl Send for X {}\n";
        assert_eq!(sites_of(src), vec![(2, "block", false), (4, "impl", false)]);
    }

    #[test]
    fn ignores_unsafe_in_comments_and_strings() {
        let src = "// unsafe here\n/* unsafe\n   unsafe */\nconst S: &str = \"unsafe\";\n\
                   const R: &str = r#\"unsafe \"quoted\" unsafe\"#;\nconst C: char = 'u';\n";
        assert_eq!(sites_of(src), vec![]);
    }

    #[test]
    fn safety_block_reaches_through_attributes_and_doc_lines() {
        let src = "// SAFETY: the real reason,\n// spread over two lines.\n\
                   #[allow(dead_code)]\nunsafe impl Sync for X {}\n";
        assert_eq!(sites_of(src), vec![(4, "impl", true)]);
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must hold the lock.\n\
                   pub unsafe fn f() {}\n";
        assert_eq!(sites_of(src), vec![(5, "fn", true)]);
    }

    #[test]
    fn code_resets_the_lookback() {
        let src = "// SAFETY: for the other one\nfn g() {}\nunsafe impl Send for X {}\n";
        assert_eq!(sites_of(src), vec![(3, "impl", false)]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a u8) -> &'a u8 { x }\nfn g() {\n    unsafe { h() }\n}\n";
        assert_eq!(sites_of(src), vec![(3, "block", false)]);
    }
}

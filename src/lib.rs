//! # anomex — anomaly extraction via frequent itemset mining
//!
//! A full reproduction of *Automating Root-Cause Analysis of Network
//! Anomalies using Frequent Itemset Mining* (Paredes-Oliva et al.,
//! SIGCOMM 2010): given an alarm from any anomaly detector (a time
//! interval plus feature meta-data), extract and summarize the traffic
//! flows that caused the anomaly as a short list of high-support
//! itemsets.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`flow`] | `anomex-flow` | flow records, NetFlow v5/v9 codecs, store, filters, sampling |
//! | [`gen`] | `anomex-gen` | synthetic backbone traffic + labeled anomaly injection |
//! | [`detect`] | `anomex-detect` | KL-histogram and entropy-PCA detectors, alarms |
//! | [`fim`] | `anomex-fim` | Apriori / FP-Growth / Eclat, weighted support, top-k tuning |
//! | [`core`] | `anomex-core` | the paper's extraction pipeline |
//! | [`stream`] | `anomex-stream` | sharded streaming ingestion + continuous extraction |
//! | [`console`] | `anomex-console` | alarm DB + operator console + live session source |
//!
//! ## Quickstart
//!
//! ```
//! use anomex::prelude::*;
//!
//! // 1. A trace with a port scan inside (normally: your NetFlow feed).
//! let mut spec = AnomalySpec::template(
//!     AnomalyKind::PortScan,
//!     "10.0.0.99".parse().unwrap(),
//!     "172.16.1.7".parse().unwrap(),
//! );
//! spec.flows = 2_000;
//! let mut scenario = Scenario::new("quickstart", 7, Backbone::Switch).with_anomaly(spec);
//! scenario.background.flows = 3_000;
//! let built = scenario.build();
//!
//! // 2. An alarm (normally: from your detector / the alarm DB).
//! let alarm = Alarm::new(0, "demo", built.scenario.window())
//!     .with_hints(vec![FeatureItem::src_ip("10.0.0.99".parse().unwrap())]);
//!
//! // 3. Extract and report.
//! let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
//! println!("{}", render_table(&extraction, 1));
//! assert!(!extraction.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use anomex_console as console;
pub use anomex_core as core;
pub use anomex_detect as detect;
pub use anomex_fim as fim;
pub use anomex_flow as flow;
pub use anomex_gen as gen;
pub use anomex_stream as stream;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use anomex_console::prelude::*;
    pub use anomex_core::prelude::*;
    pub use anomex_detect::prelude::*;
    pub use anomex_fim::prelude::*;
    pub use anomex_flow::prelude::*;
    pub use anomex_gen::prelude::*;
    pub use anomex_stream::prelude::*;
}

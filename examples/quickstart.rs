//! Quickstart: extract the flows behind an alarm in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow: build (or receive) a flow store, describe the alarm your
//! detector raised, run the extractor, read the Table-1-style report.

use anomex::prelude::*;

fn main() {
    // A labeled scenario stands in for your NetFlow feed: benign
    // backbone traffic plus a port scan from 10.0.0.99.
    let scanner: std::net::Ipv4Addr = "10.0.0.99".parse().unwrap();
    let victim: std::net::Ipv4Addr = "172.20.1.7".parse().unwrap();
    let mut spec = AnomalySpec::template(AnomalyKind::PortScan, scanner, victim);
    spec.flows = 20_000;
    let mut scenario = Scenario::new("quickstart", 7, Backbone::Switch).with_anomaly(spec);
    scenario.background.flows = 30_000;
    let built = scenario.build();
    println!("store holds {} flows", built.observed_flows());

    // The alarm: a time interval plus whatever meta-data the detector
    // produced — here, just the scanner's address.
    let alarm = Alarm::new(0, "my-detector", built.scenario.window())
        .with_hints(vec![FeatureItem::src_ip(scanner)])
        .with_kind("port scan");

    // Extraction: candidate selection -> dual-support Apriori with
    // self-tuned thresholds -> ranked itemsets.
    let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
    println!("\n{}", render_summary(&extraction));
    println!("{}", render_table(&extraction, 1));

    // Drill into the top itemset, as an operator would.
    let top = &extraction.itemsets[0];
    let flows = drill(&built.store, &alarm, top);
    let summary = DrillSummary::of(&flows);
    println!("top itemset [{}] covers: {}", top.pattern(), summary.describe());
    let class = classify(top, &summary, anomex::flow::record::Protocol::TCP);
    println!("classified as: {class}");

    assert!(!extraction.is_empty(), "extraction found nothing");
}

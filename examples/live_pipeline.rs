//! Live pipeline: NetFlow v5 packets in, root-cause reports out.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! ```
//!
//! A GEANT-like trace (background + a port scan in the 7th minute) is
//! encoded into real NetFlow v5 packets and replayed through the
//! sharded streaming pipeline from **two concurrent collector
//! "sockets"** — the ingest handle is split in two, each feeder thread
//! pushing its half of the packet stream, with the shared
//! min-over-handles watermark keeping event time correct. Each closed
//! one-minute window feeds a KL + entropy-PCA detector **ensemble**
//! incrementally; the scan window trips both detectors, the bank
//! merges their alarms into one attributed alarm, the continuous
//! extractor mines the in-memory window shards once, and the report
//! lands on the live console — no archive ever queried.

use anomex::flow::v5;
use anomex::prelude::*;
use anomex::stream::pipeline;
use anomex_detect::kl::KlConfig;
use anomex_detect::pca::PcaConfig;

fn main() {
    const WIDTH_MS: u64 = 60_000;

    // 1. The "wire": a labeled scenario rendered into v5 packets. The
    //    scan sits late enough (minute 12 of 14) that the sliding-PCA
    //    detector has a trained subspace when it arrives — so the scan
    //    window exercises a genuine cross-detector merge.
    let scanner: std::net::Ipv4Addr = "10.3.0.99".parse().unwrap();
    let mut spec =
        AnomalySpec::template(AnomalyKind::PortScan, scanner, "172.16.5.5".parse().unwrap());
    spec.flows = 4_000;
    spec.start_ms = 11 * WIDTH_MS;
    spec.duration_ms = WIDTH_MS;
    let mut scenario = Scenario::new("live", 42, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = 9_000;
    scenario.background.duration_ms = 14 * WIDTH_MS;
    let built = scenario.build();
    let mut wire = built.store.snapshot();
    wire.sort_by_key(|f| f.start_ms); // collectors see roughly time order
    let packets = v5::encode_all(&wire, v5::ExportBase::epoch(), 0).expect("encode v5");
    println!("replaying {} flows in {} v5 packets", wire.len(), packets.len());

    // 2. The pipeline: 4 shards, 1-minute windows, 30 s lateness bound,
    //    a two-detector ensemble judging every window.
    let config = StreamConfig {
        shards: 4,
        span: Some(scenario.window()),
        lateness_ms: 30_000,
        detectors: DetectorRegistry::from_specs(&[
            DetectorSpec::Kl(KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() }),
            DetectorSpec::Pca(PcaConfig { interval_ms: WIDTH_MS, ..PcaConfig::default() }, 12),
        ]),
        ..StreamConfig::default()
    };
    let (ingest, reports) = pipeline::launch(config);
    // The telemetry side-channel: the control thread emits a
    // MetricsReport per merged window (and a final one at shutdown).
    let telemetry = ingest.metrics_reports().expect("first taker gets the subscription");

    // Two collector "sockets": split the handle, deal the packet stream
    // round-robin, and feed both halves concurrently. Each handle
    // batches records per shard and the watermark is the minimum over
    // both live handles, so neither feeder can strand the other's
    // records behind the lateness bound.
    let mut sockets = ingest.split(2);
    let mut feeder = sockets.pop().unwrap();
    let mut other = sockets.pop().unwrap();
    // `Bytes` clones are zero-copy views, so dealing the stream out is
    // pointer arithmetic, not payload copies.
    let (even, odd): (Vec<_>, Vec<_>) =
        packets.iter().cloned().enumerate().partition(|(i, _)| i % 2 == 0);
    let second_socket = std::thread::spawn(move || {
        for (_, packet) in odd {
            other.push_v5(&packet).expect("decode own packets");
        }
        other.ingested() // handle drops here: flushed + retired
    });
    for (_, packet) in even {
        feeder.push_v5(&packet).expect("decode own packets");
    }
    let from_second = second_socket.join().expect("second collector thread");
    let stats = feeder.finish();
    println!(
        "ingested {} records over {} windows ({} via the second socket): \
         {} merged alarm(s), {} late, {} decode errors, {} send failures",
        stats.ingested,
        stats.windows,
        from_second,
        stats.alarms,
        stats.late_dropped,
        stats.decode_errors,
        stats.send_failures
    );
    for counter in &stats.per_detector {
        println!(
            "  {:<12} {} window(s), {} alarm(s)",
            counter.name, counter.windows, counter.alarms
        );
    }

    // 3. The console end: render reports as they drain — telemetry
    //    one-liners interleaved — and keep the alarm DB for
    //    interactive follow-up.
    let mut session = LiveSession::new();
    let mut out = Vec::new();
    let received =
        session.drain_with_metrics(&reports, &telemetry, &mut out).expect("render reports");
    print!("{}", String::from_utf8(out).expect("utf8 report text"));

    // The final emission carries the complete run: per-stage timings
    // and event-time health next to the counters the stats show.
    let final_metrics = session.last_metrics().expect("final telemetry emission");
    assert_eq!(final_metrics.records(), stats.ingested, "telemetry agrees with the stats");
    println!(
        "final telemetry: watermark lag {}ms, frontier skew {}ms, \
         mean shard apply {:.0}ns, mean detector push {:.0}ns",
        final_metrics.watermark_lag_event_ms().unwrap_or(0),
        final_metrics.frontier_skew_ms().unwrap_or(0),
        final_metrics.snapshot.histogram("shard.apply_ns").map_or(0.0, |h| h.mean()),
        final_metrics.snapshot.histogram("detect.kl.push_ns").map_or(0.0, |h| h.mean()),
    );

    assert!(received >= 1, "the scan window must produce a report");
    let scan_report = session
        .reports()
        .iter()
        .find(|r| r.alarm().is_some_and(|a| a.window.from_ms == 11 * WIDTH_MS))
        .expect("the scan window must be among the reports");
    let top = &scan_report.extraction().expect("alarm reports carry an extraction").itemsets[0];
    assert!(
        top.items.iter().any(|i| i.to_string() == format!("srcIP={scanner}")),
        "scanner missing from the top itemset: {}",
        top.pattern()
    );
    println!("\ntop itemset correctly pins the scanner: {}", top.pattern());
    println!(
        "per-detector attribution: {}",
        session
            .detector_alarms()
            .iter()
            .map(|(name, count)| format!("{name}={count}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

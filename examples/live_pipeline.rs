//! Live pipeline: NetFlow v5 packets in, root-cause reports out.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! ```
//!
//! A GEANT-like trace (background + a port scan in the 7th minute) is
//! encoded into real NetFlow v5 packets and replayed through the
//! sharded streaming pipeline. Each closed one-minute window feeds the
//! KL detector incrementally; the scan window trips an alarm, the
//! continuous extractor mines the in-memory window shards, and the
//! report lands on the live console — no archive ever queried.

use anomex::flow::v5;
use anomex::prelude::*;
use anomex::stream::pipeline;
use anomex_detect::kl::KlConfig;

fn main() {
    const WIDTH_MS: u64 = 60_000;

    // 1. The "wire": a labeled scenario rendered into v5 packets.
    let scanner: std::net::Ipv4Addr = "10.3.0.99".parse().unwrap();
    let mut spec =
        AnomalySpec::template(AnomalyKind::PortScan, scanner, "172.16.5.5".parse().unwrap());
    spec.flows = 2_500;
    spec.start_ms = 6 * WIDTH_MS;
    spec.duration_ms = WIDTH_MS;
    let mut scenario = Scenario::new("live", 42, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = 5_000;
    scenario.background.duration_ms = 8 * WIDTH_MS;
    let built = scenario.build();
    let mut wire = built.store.snapshot();
    wire.sort_by_key(|f| f.start_ms); // collectors see roughly time order
    let packets = v5::encode_all(&wire, v5::ExportBase::epoch(), 0).expect("encode v5");
    println!("replaying {} flows in {} v5 packets", wire.len(), packets.len());

    // 2. The pipeline: 4 shards, 1-minute windows, 30 s lateness bound.
    let config = StreamConfig {
        shards: 4,
        span: Some(scenario.window()),
        lateness_ms: 30_000,
        detector: DetectorConfig::Kl(KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() }),
        ..StreamConfig::default()
    };
    let (mut ingest, reports) = pipeline::launch(config);
    for packet in &packets {
        ingest.push_v5(packet).expect("decode own packets");
    }
    let stats = ingest.finish();
    println!(
        "ingested {} records over {} windows: {} alarm(s), {} late, {} decode errors",
        stats.ingested, stats.windows, stats.alarms, stats.late_dropped, stats.decode_errors
    );

    // 3. The console end: render reports as they drain, keep the alarm
    //    DB for interactive follow-up.
    let mut session = LiveSession::new();
    let mut out = Vec::new();
    let received = session.drain(&reports, &mut out).expect("render reports");
    print!("{}", String::from_utf8(out).expect("utf8 report text"));

    assert!(received >= 1, "the scan window must produce a report");
    let top = &session.reports()[0].extraction.itemsets[0];
    assert!(
        top.items.iter().any(|i| i.to_string() == format!("srcIP={scanner}")),
        "scanner missing from the top itemset: {}",
        top.pattern()
    );
    println!("\ntop itemset correctly pins the scanner: {}", top.pattern());
}

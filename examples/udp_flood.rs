//! The packet-support extension on the anomaly that motivated it.
//!
//! ```text
//! cargo run --release --example udp_flood
//! ```
//!
//! "If an anomaly is not characterized by a significant volume of flows,
//! Apriori cannot extract it. For instance, this occurs in the case of
//! point to point UDP floods (involving a small number of flows but a
//! large number of packets)" — so the paper extended Apriori to compute
//! support in packets too. This example runs both configurations on the
//! same flood and prints what each sees.

use anomex::prelude::*;

fn main() {
    // 3 flows, ~900K packets, buried in 40K background flows.
    let attacker: std::net::Ipv4Addr = "10.4.128.77".parse().unwrap();
    let victim: std::net::Ipv4Addr = "172.16.9.40".parse().unwrap();
    let mut spec = AnomalySpec::template(AnomalyKind::UdpFlood, attacker, victim);
    spec.packets = 900_000;
    let mut scenario =
        Scenario::new("udp-flood", 0xF100D, Backbone::Geant).with_anomaly(spec).with_sampling(100); // the GEANT regime
    scenario.background.flows = 40_000;
    let built = scenario.build();
    let label = &built.truth.anomalies[0];
    println!(
        "injected: {} ({} wire flows, {} wire packets); observed {} flows total",
        label.describe(),
        label.flows,
        label.packets,
        built.observed_flows()
    );

    let alarm = Alarm::new(0, "netreflex", built.scenario.window())
        .with_hints(vec![FeatureItem::src_ip(attacker), FeatureItem::dst_ip(victim)])
        .with_kind("volume anomaly");

    for (name, config) in [
        ("flow support only (pre-extension Apriori)", ExtractorConfig::switch_paper()),
        ("flow + packet support (this paper)", ExtractorConfig::geant_paper()),
    ] {
        println!("\n=== {name} ===");
        let extraction = Extractor::new(config).extract(&built.store, &alarm);
        if extraction.is_empty() {
            println!("no itemsets above the meaningful-support floor");
            continue;
        }
        println!("{}", render_table(&extraction, 1));
        let found_flood = extraction
            .itemsets
            .iter()
            .any(|e| e.items.contains(&FeatureItem::src_ip(attacker)) && e.items.len() >= 2);
        println!(
            "flood itemset present: {}",
            if found_flood { "YES" } else { "no — invisible to this metric" }
        );
    }

    println!(
        "\nThe flood's flow support ({} observed flows) sits under any sane flow \
         threshold, but its packet support dominates the interval — exactly why \
         the paper mines both.",
        built.observed_anomalous(0).len()
    );
}

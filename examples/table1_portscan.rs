//! The paper's Table 1 incident, end to end.
//!
//! ```text
//! cargo run --release --example table1_portscan
//! ```
//!
//! One victim, four overlapping anomalies: the detector flags only
//! scanner A; extraction surfaces scanner B and two TCP-SYN DDoS waves
//! the detector never reported — the "particularly interesting cases"
//! (26% in the paper's demo corpus) where the miner finds flows the
//! detector missed.

use anomex::prelude::*;

fn main() {
    // Scaled to 10% of the paper's volumes so the example runs instantly;
    // crates/bench/benches/table1.rs runs the full-scale version.
    let config = CorpusConfig { scale: 0.1, seed: 0x5EED_2010 };
    let scenario = table1_scenario(&config);
    let built = scenario.build();
    println!(
        "GEANT-like trace: {} wire flows, 1/{} sampled -> {} observed",
        built.wire_flows.len(),
        scenario.sampling,
        built.observed_flows()
    );
    for a in &built.truth.anomalies {
        println!("  injected: {}", a.describe());
    }

    // NetReflex-style meta-data: only scanner A (anomaly #0) is flagged.
    let label = &built.truth.anomalies[0];
    let alarm = Alarm::new(0, "netreflex", built.scenario.window())
        .with_hints(vec![
            FeatureItem::src_ip(label.spec.attacker),
            FeatureItem::dst_ip(label.spec.victim),
            FeatureItem::src_port(label.spec.src_port),
        ])
        .with_kind("port scan");
    println!("\ndetector says: {}", alarm.describe());

    let extraction = Extractor::new(ExtractorConfig::geant_paper()).extract(&built.store, &alarm);
    println!(
        "\nitemsets (supports x{} = wire-scale estimates):\n{}",
        scenario.sampling,
        render_table(&extraction, scenario.sampling as u64)
    );

    // How many injected anomalies did the itemsets reach?
    let mut matched = 0;
    for anomaly in &built.truth.anomalies {
        let hit = extraction.itemsets.iter().any(|e| {
            let covered = drill(&built.store, &alarm, e);
            let of_this = covered.iter().filter(|f| anomaly.contains(f)).count();
            !covered.is_empty() && of_this * 2 > covered.len()
        });
        println!(
            "  anomaly #{} ({}) {}",
            anomaly.id,
            anomaly.kind,
            if hit { "-> surfaced by extraction" } else { "-> MISSED" }
        );
        matched += hit as usize;
    }
    assert_eq!(matched, 4, "all four Table 1 anomalies should surface");
    println!("\nall four anomalies surfaced from one alarm — Table 1 reproduced.");
}

//! The NOC workflow: detectors fill the alarm DB, the operator works the
//! console — the paper's Figure 1 wearing a terminal instead of a GUI.
//!
//! ```text
//! # scripted session (default):
//! cargo run --release --example operator_console
//! # interactive session:
//! cargo run --release --example operator_console -- -i
//! ```

use std::io::{BufRead, Write};

use anomex::prelude::*;

fn main() {
    // A trace with two incidents: a port scan (interval 9) and a SYN
    // flood (interval 6), inside 12 one-minute intervals of backbone
    // noise.
    let width = 60_000u64;
    let mut scenario = Scenario::new("noc", 0x0C0FFEE, Backbone::Switch);
    scenario.background.duration_ms = 12 * width;
    scenario.background.flows = 24_000;

    let mut scan = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.103.0.66".parse().unwrap(),
        "172.20.1.40".parse().unwrap(),
    );
    scan.flows = 8_000;
    scan.start_ms = 9 * width;
    scan.duration_ms = width;

    let mut flood = AnomalySpec::template(
        AnomalyKind::SynFlood,
        "10.101.7.1".parse().unwrap(),
        "172.20.2.9".parse().unwrap(),
    );
    flood.flows = 6_000;
    flood.start_ms = 6 * width;
    flood.duration_ms = width;

    let built = scenario.with_anomaly(scan).with_anomaly(flood).build();
    let flows = built.store.snapshot();
    let span = TimeRange::new(0, 12 * width);

    // Detectors feed the alarm database — the paper's integration point.
    let mut db = AlarmDb::in_memory();
    let mut kl = KlDetector::new(KlConfig { interval_ms: width, ..KlConfig::default() });
    let kl_alarms = kl.detect(&flows, span);
    let mut pca = PcaDetector::new(PcaConfig { interval_ms: width, ..PcaConfig::default() });
    let pca_alarms = pca.detect(&flows, span);
    println!(
        "detectors raised {} (KL) + {} (entropy-PCA) alarms",
        kl_alarms.len(),
        pca_alarms.len()
    );
    db.add_all(kl_alarms);
    db.add_all(pca_alarms);

    let mut console = Console::new(built.store, db);
    let interactive = std::env::args().any(|a| a == "-i" || a == "--interactive");
    if interactive {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        console.run(stdin.lock(), stdout.lock()).expect("console I/O");
    } else {
        // The canned session an operator would type.
        let script = "alarms\nalarm 0\nextract\nflows 0 5\nclassify 0\nfilter dst port 80 and flags S\nquit\n";
        println!("--- scripted session ---");
        run_scripted(&mut console, script);
    }
}

fn run_scripted(console: &mut Console, script: &str) {
    let mut out = Vec::new();
    console.run(std::io::Cursor::new(script.to_string()), &mut out).expect("console I/O");
    std::io::stdout().write_all(&out).unwrap();
    let _ = std::io::stdout().flush();
    // Keep the compiler honest about the BufRead bound being exercised.
    let _ = std::io::Cursor::new(Vec::<u8>::new()).lines();
}

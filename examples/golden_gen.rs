//! Regenerator for the golden fixtures:
//!
//! - `tests/fixtures/miner_agreement_golden.json` (`-- miner`)
//! - `tests/fixtures/ensemble_alarms_golden.json` (`-- ensemble`)
//!
//! No argument regenerates both.
//!
//! The miner fixture was captured from the **pre-refactor,
//! row-oriented** miners (the seed's `TransactionSet` engine) at the
//! commit that introduced the columnar `TransactionMatrix`; the
//! byte-identical check in `tests/miner_agreement.rs` proves the
//! columnar engine reproduces that output exactly. The ensemble
//! fixture was captured when the detector bank landed (PR 4) and pins
//! the KL+PCA merged-alarm surface the same way for
//! `tests/detector_equivalence.rs`.
//!
//! Running this program today regenerates a fixture from the
//! **current** code — doing so re-baselines the golden test and
//! discards the cross-refactor guarantee. Only regenerate when the
//! corpus generator (`anomex-gen`) or a detector/miner itself changes
//! deliberately, and review the fixture diff: it must be explainable
//! by that change alone.

use anomex::prelude::*;
use serde::{Serialize, Value};

include!("../tests/fixtures/golden_corpus.rs");
include!("../tests/fixtures/ensemble_corpus.rs");

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    std::fs::create_dir_all("tests/fixtures").expect("mkdir fixtures");
    if matches!(which.as_str(), "all" | "miner") {
        miner_fixture();
    }
    if matches!(which.as_str(), "all" | "ensemble") {
        std::fs::write("tests/fixtures/ensemble_alarms_golden.json", ensemble_golden_json())
            .expect("write ensemble fixture");
        println!("wrote tests/fixtures/ensemble_alarms_golden.json");
    }
}

fn miner_fixture() {
    let flows = golden_corpus();
    let cases: [(SupportMetric, u64, usize); 6] = [
        (SupportMetric::Flows, 8, 0),
        (SupportMetric::Flows, 40, 0),
        (SupportMetric::Flows, 200, 4),
        (SupportMetric::Packets, 500, 0),
        (SupportMetric::Packets, 4_000, 0),
        (SupportMetric::Packets, 20_000, 4),
    ];
    let mut out_cases = Vec::new();
    for (metric, threshold, max_len) in cases {
        let txs = encode_flows(&flows, metric);
        let mined = mine(
            &txs,
            &MiningConfig {
                algorithm: Algorithm::Apriori,
                min_support: MinSupport::Absolute(threshold),
                max_len,
                threads: 1,
            },
        );
        // All miners must agree before anything is baselined.
        for algorithm in [Algorithm::FpGrowth, Algorithm::Eclat] {
            let other = mine(
                &txs,
                &MiningConfig {
                    algorithm,
                    min_support: MinSupport::Absolute(threshold),
                    max_len,
                    threads: 1,
                },
            );
            assert_eq!(other, mined, "{algorithm} disagrees at {metric}/{threshold}");
        }
        out_cases.push(Value::Object(vec![
            ("metric".to_string(), Value::Str(metric.to_string())),
            ("min_support".to_string(), Value::U64(threshold)),
            ("max_len".to_string(), Value::U64(max_len as u64)),
            ("results".to_string(), mined.to_json_value()),
        ]));
    }
    let doc = Value::Object(vec![
        ("corpus".to_string(), Value::Str("golden seed 0x601D: 1200 scan + 2400 bg".to_string())),
        ("cases".to_string(), Value::Array(out_cases)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render golden json");
    std::fs::write("tests/fixtures/miner_agreement_golden.json", json + "\n")
        .expect("write fixture");
    println!("wrote tests/fixtures/miner_agreement_golden.json");
}

//! Regenerator for `tests/fixtures/miner_agreement_golden.json`.
//!
//! The committed fixture was captured from the **pre-refactor,
//! row-oriented** miners (the seed's `TransactionSet` engine) at the
//! commit that introduced the columnar `TransactionMatrix`; the
//! byte-identical check in `tests/miner_agreement.rs` proves the
//! columnar engine reproduces that output exactly.
//!
//! Running this program today regenerates the fixture from the
//! **current** miners — doing so re-baselines the golden test and
//! discards the cross-refactor guarantee. Only regenerate when the
//! corpus generator (`anomex-gen`) itself changes deliberately, and
//! review the fixture diff: it must be explainable by the generator
//! change alone.

use anomex::prelude::*;
use serde::{Serialize, Value};

include!("../tests/fixtures/golden_corpus.rs");

fn main() {
    let flows = golden_corpus();
    let cases: [(SupportMetric, u64, usize); 6] = [
        (SupportMetric::Flows, 8, 0),
        (SupportMetric::Flows, 40, 0),
        (SupportMetric::Flows, 200, 4),
        (SupportMetric::Packets, 500, 0),
        (SupportMetric::Packets, 4_000, 0),
        (SupportMetric::Packets, 20_000, 4),
    ];
    let mut out_cases = Vec::new();
    for (metric, threshold, max_len) in cases {
        let txs = encode_flows(&flows, metric);
        let mined = mine(
            &txs,
            &MiningConfig {
                algorithm: Algorithm::Apriori,
                min_support: MinSupport::Absolute(threshold),
                max_len,
                threads: 1,
            },
        );
        // All miners must agree before anything is baselined.
        for algorithm in [Algorithm::FpGrowth, Algorithm::Eclat] {
            let other = mine(
                &txs,
                &MiningConfig {
                    algorithm,
                    min_support: MinSupport::Absolute(threshold),
                    max_len,
                    threads: 1,
                },
            );
            assert_eq!(other, mined, "{algorithm} disagrees at {metric}/{threshold}");
        }
        out_cases.push(Value::Object(vec![
            ("metric".to_string(), Value::Str(metric.to_string())),
            ("min_support".to_string(), Value::U64(threshold)),
            ("max_len".to_string(), Value::U64(max_len as u64)),
            ("results".to_string(), mined.to_json_value()),
        ]));
    }
    let doc = Value::Object(vec![
        ("corpus".to_string(), Value::Str("golden seed 0x601D: 1200 scan + 2400 bg".to_string())),
        ("cases".to_string(), Value::Array(out_cases)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render golden json");
    std::fs::create_dir_all("tests/fixtures").expect("mkdir fixtures");
    std::fs::write("tests/fixtures/miner_agreement_golden.json", json + "\n")
        .expect("write fixture");
    println!("wrote tests/fixtures/miner_agreement_golden.json");
}
